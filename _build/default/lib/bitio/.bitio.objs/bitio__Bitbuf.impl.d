lib/bitio/bitbuf.ml: Bytes Char Format
