lib/bitio/codes.mli: Bitbuf Reader
