lib/iosim/stats.ml: Format
