lib/iosim/device.ml: Bitio Buffer_pool Bytes Char Stats
