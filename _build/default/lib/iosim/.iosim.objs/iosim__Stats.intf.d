lib/iosim/stats.mli: Format
