lib/iosim/device.mli: Bitio Buffer_pool Stats
