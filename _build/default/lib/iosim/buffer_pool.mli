(** LRU buffer pool modelling internal memory of [M] bits.

    The pool tracks which block ids are currently resident; it stores
    no data (block contents live in the device image).  A capacity of
    0 disables caching, so every access is a block transfer. *)

type t

(** [create ~capacity_blocks ()]. *)
val create : capacity_blocks:int -> unit -> t

val capacity : t -> int

(** [access t blk] records an access to block [blk]; returns [true] on
    a hit.  On a miss the block becomes resident (evicting the LRU
    block if full). *)
val access : t -> int -> bool

(** Is the block currently resident (does not update recency)? *)
val mem : t -> int -> bool

(** Drop a specific block (used when the device frees space). *)
val invalidate : t -> int -> unit

(** Empty the pool. *)
val clear : t -> unit

(** Number of resident blocks. *)
val occupancy : t -> int
