(** Alphabet-range query generators and the naive reference answer. *)

type range = { lo : int; hi : int }

(** Exhaustive scan of the string — the ground truth every index is
    tested against. *)
val naive_answer : Gen.t -> range -> Cbitmap.Posting.t

(** Number of matching positions (scan). *)
val naive_count : Gen.t -> range -> int

(** Uniformly random non-empty ranges over the alphabet. *)
val random_ranges : seed:int -> sigma:int -> count:int -> range list

(** Ranges of a fixed alphabet width [ell], random left endpoint. *)
val fixed_width_ranges : seed:int -> sigma:int -> ell:int -> count:int -> range list

(** Ranges whose answer size is close to a target selectivity
    (fraction of [n]); found by scanning prefix counts of the string.
    Returns ranges and their exact answer sizes. *)
val selectivity_ranges :
  seed:int -> Gen.t -> target:float -> count:int -> (range * int) list

(** Point queries (lo = hi). *)
val point_queries : seed:int -> sigma:int -> count:int -> range list
