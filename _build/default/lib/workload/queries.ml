module Rng = Hashing.Universal.Rng

type range = { lo : int; hi : int }

let naive_answer (g : Gen.t) { lo; hi } =
  let acc = ref [] in
  Array.iteri (fun i c -> if c >= lo && c <= hi then acc := i :: !acc) g.data;
  Cbitmap.Posting.of_sorted_array (Array.of_list (List.rev !acc))

let naive_count (g : Gen.t) { lo; hi } =
  Array.fold_left
    (fun acc c -> if c >= lo && c <= hi then acc + 1 else acc)
    0 g.data

let random_ranges ~seed ~sigma ~count =
  let rng = Rng.create ~seed in
  List.init count (fun _ ->
      let a = Rng.below rng sigma and b = Rng.below rng sigma in
      { lo = min a b; hi = max a b })

let fixed_width_ranges ~seed ~sigma ~ell ~count =
  if ell < 1 || ell > sigma then invalid_arg "Queries.fixed_width_ranges";
  let rng = Rng.create ~seed in
  List.init count (fun _ ->
      let lo = Rng.below rng (sigma - ell + 1) in
      { lo; hi = lo + ell - 1 })

let selectivity_ranges ~seed (g : Gen.t) ~target ~count =
  let n = Array.length g.data in
  let sigma = g.sigma in
  let c = Cbitmap.Entropy.counts ~sigma g.data in
  (* prefix.(i) = #positions with character < i *)
  let prefix = Array.make (sigma + 1) 0 in
  for i = 0 to sigma - 1 do
    prefix.(i + 1) <- prefix.(i) + c.(i)
  done;
  let goal = int_of_float (target *. float_of_int n) in
  let rng = Rng.create ~seed in
  List.init count (fun _ ->
      let lo = Rng.below rng sigma in
      (* Grow hi until the answer reaches the goal. *)
      let rec grow hi =
        if hi >= sigma - 1 then sigma - 1
        else if prefix.(hi + 1) - prefix.(lo) >= goal then hi
        else grow (hi + 1)
      in
      let hi = grow lo in
      ({ lo; hi }, prefix.(hi + 1) - prefix.(lo)))

let point_queries ~seed ~sigma ~count =
  let rng = Rng.create ~seed in
  List.init count (fun _ ->
      let a = Rng.below rng sigma in
      { lo = a; hi = a })
