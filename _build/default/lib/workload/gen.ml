module Rng = Hashing.Universal.Rng

type t = { sigma : int; data : int array }

let length t = Array.length t.data

let uniform ~seed ~n ~sigma =
  let rng = Rng.create ~seed in
  { sigma; data = Array.init n (fun _ -> Rng.below rng sigma) }

(* Draw from a cumulative distribution by binary search. *)
let draw_cdf rng cdf =
  let u = Rng.float rng in
  let lo = ref 0 and hi = ref (Array.length cdf - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cdf.(mid) < u then lo := mid + 1 else hi := mid
  done;
  !lo

let zipf ?(permute = true) ~seed ~n ~sigma ~theta () =
  let rng = Rng.create ~seed in
  let weights =
    Array.init sigma (fun i -> 1.0 /. (float_of_int (i + 1) ** theta))
  in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let cdf = Array.make sigma 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i w ->
      acc := !acc +. (w /. total);
      cdf.(i) <- !acc)
    weights;
  cdf.(sigma - 1) <- 1.0;
  let perm = Array.init sigma (fun i -> i) in
  if permute then
    for i = sigma - 1 downto 1 do
      let j = Rng.below rng (i + 1) in
      let tmp = perm.(i) in
      perm.(i) <- perm.(j);
      perm.(j) <- tmp
    done;
  { sigma; data = Array.init n (fun _ -> perm.(draw_cdf rng cdf)) }

let clustered ~seed ~n ~sigma ~run =
  if run < 1 then invalid_arg "Gen.clustered";
  let rng = Rng.create ~seed in
  let data = Array.make n 0 in
  let i = ref 0 in
  while !i < n do
    let c = Rng.below rng sigma in
    let len = 1 + Rng.below rng (2 * run) in
    let len = min len (n - !i) in
    Array.fill data !i len c;
    i := !i + len
  done;
  { sigma; data }

let markov ~seed ~n ~sigma ~stay =
  if stay < 0.0 || stay >= 1.0 then invalid_arg "Gen.markov";
  let rng = Rng.create ~seed in
  let data = Array.make n 0 in
  let prev = ref (Rng.below rng sigma) in
  for i = 0 to n - 1 do
    if Rng.float rng >= stay then prev := Rng.below rng sigma;
    data.(i) <- !prev
  done;
  { sigma; data }

let h0 t = Cbitmap.Entropy.h0 ~sigma:t.sigma t.data
let counts t = Cbitmap.Entropy.counts ~sigma:t.sigma t.data
