lib/workload/gen.ml: Array Cbitmap Hashing
