lib/workload/gen.mli:
