lib/workload/queries.ml: Array Cbitmap Gen Hashing List
