lib/workload/queries.mli: Cbitmap Gen
