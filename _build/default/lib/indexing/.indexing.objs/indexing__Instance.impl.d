lib/indexing/instance.ml: Answer Iosim
