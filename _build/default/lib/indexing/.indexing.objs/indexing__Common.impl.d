lib/indexing/common.ml: Array Bitio Cbitmap
