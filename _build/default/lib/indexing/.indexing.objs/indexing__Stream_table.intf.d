lib/indexing/stream_table.mli: Cbitmap Iosim
