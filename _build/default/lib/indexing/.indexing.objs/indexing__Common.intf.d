lib/indexing/common.mli: Cbitmap
