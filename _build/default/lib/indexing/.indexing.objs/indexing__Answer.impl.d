lib/indexing/answer.ml: Cbitmap
