lib/indexing/stream_table.ml: Array Bitio Cbitmap Common Iosim List
