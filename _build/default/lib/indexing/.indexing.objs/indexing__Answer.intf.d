lib/indexing/answer.mli: Cbitmap
