lib/indexing/instance.mli: Answer Cbitmap Iosim
