(** A built secondary index, packaged uniformly so that the test
    harness and the benchmarks can drive every structure (the paper's
    and all baselines) through one interface and read I/O costs off
    the shared device counters. *)

type t = {
  name : string;
  device : Iosim.Device.t;
  n : int;  (** string length *)
  sigma : int;
  size_bits : int;  (** space used by the structure, in bits *)
  query : lo:int -> hi:int -> Answer.t;
}

(** Run a query cold (pool cleared, counters reset) and return the
    answer together with the I/O statistics of just that query. *)
val query_cold : t -> lo:int -> hi:int -> Answer.t * Iosim.Stats.t

(** Convenience: materialized positions of a cold query. *)
val query_posting : t -> lo:int -> hi:int -> Cbitmap.Posting.t
