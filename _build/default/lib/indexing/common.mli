(** Shared helpers for index construction. *)

(** [positions_by_char ~sigma x] is the array of position sets
    [I_{a}(x)] for every character [a]. *)
val positions_by_char : sigma:int -> int array -> Cbitmap.Posting.t array

(** Bits needed to store one value of [0..v-1] ([ceil lg v], at least
    1). *)
val bits_for : int -> int

(** Prefix-count array [A] of §2.1: [A.(i)] is the number of positions
    with character [< i]; length [sigma + 1]. *)
val prefix_counts : sigma:int -> int array -> int array
