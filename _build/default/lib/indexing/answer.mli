(** Query answers in compressed form.

    §2.1: when the answer has more than [n/2] elements the paper's
    structures compute the two complementary range queries instead and
    return the complement, so the output representation is always
    [O(lg (n choose z))] bits.  [Complement p] denotes
    [{0..n-1} \ p]. *)

type t = Direct of Cbitmap.Posting.t | Complement of Cbitmap.Posting.t

(** Materialize (decompressing a complement costs [O(n)] work — the
    benchmarks report I/Os before this step, as the paper counts the
    compressed output). *)
val to_posting : n:int -> t -> Cbitmap.Posting.t

(** Cardinality of the answer set. *)
val cardinal : n:int -> t -> int

(** Membership without materializing. *)
val mem : t -> int -> bool

(** Size in bits of the gamma gap encoding of the stored set (the
    "T" of the paper: the compressed output size). *)
val compressed_bits : t -> int

val is_complement : t -> bool
