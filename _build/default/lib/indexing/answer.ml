type t = Direct of Cbitmap.Posting.t | Complement of Cbitmap.Posting.t

let to_posting ~n = function
  | Direct p -> p
  | Complement p -> Cbitmap.Posting.complement ~n p

let cardinal ~n = function
  | Direct p -> Cbitmap.Posting.cardinal p
  | Complement p -> n - Cbitmap.Posting.cardinal p

let mem t i =
  match t with
  | Direct p -> Cbitmap.Posting.mem p i
  | Complement p -> not (Cbitmap.Posting.mem p i)

let compressed_bits = function
  | Direct p | Complement p -> Cbitmap.Gap_codec.encoded_size p

let is_complement = function Direct _ -> false | Complement _ -> true
