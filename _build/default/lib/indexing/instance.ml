type t = {
  name : string;
  device : Iosim.Device.t;
  n : int;
  sigma : int;
  size_bits : int;
  query : lo:int -> hi:int -> Answer.t;
}

let query_cold t ~lo ~hi =
  Iosim.Device.clear_pool t.device;
  Iosim.Device.reset_stats t.device;
  let answer = t.query ~lo ~hi in
  (answer, Iosim.Stats.snapshot (Iosim.Device.stats t.device))

let query_posting t ~lo ~hi =
  let answer, _ = query_cold t ~lo ~hi in
  Answer.to_posting ~n:t.n answer
