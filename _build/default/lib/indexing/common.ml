let positions_by_char ~sigma x =
  let buckets = Array.make sigma [] in
  for i = Array.length x - 1 downto 0 do
    let c = x.(i) in
    if c < 0 || c >= sigma then invalid_arg "Common.positions_by_char";
    buckets.(c) <- i :: buckets.(c)
  done;
  Array.map
    (fun l -> Cbitmap.Posting.of_sorted_array (Array.of_list l))
    buckets

let bits_for v = max 1 (Bitio.Codes.ceil_log2 (max 2 v))

let prefix_counts ~sigma x =
  let a = Array.make (sigma + 1) 0 in
  Array.iter (fun c -> a.(c + 1) <- a.(c + 1) + 1) x;
  for i = 1 to sigma do
    a.(i) <- a.(i) + a.(i - 1)
  done;
  a
