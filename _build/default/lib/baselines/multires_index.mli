(** Multi-resolution bitmap index of Sinha–Winslett [16] (§1.2):
    binning applied recursively with levels of bin width
    [1, w, w², ...].  A range is covered greedily by maximal aligned
    bins, so at most [2(w-1)] bitmaps are merged per level.

    Worst-case space is [Θ(n·lg²σ / lg w)] bits when every level's
    bitmaps are optimally compressed, and queries can read a factor
    [O(lg w)] more data than the output — the time/space trade-off the
    paper's structure eliminates. *)

type t

val build :
  ?code:Cbitmap.Gap_codec.code ->
  Iosim.Device.t ->
  sigma:int ->
  w:int ->
  int array ->
  t

(** Number of levels (including the per-character level 0). *)
val levels : t -> int

val query : t -> lo:int -> hi:int -> Indexing.Answer.t

(** The greedy cover used by [query], as (level, bin index) pairs —
    exposed for tests of the decomposition. *)
val cover : t -> lo:int -> hi:int -> (int * int) list

val size_bits : t -> int

val instance :
  ?code:Cbitmap.Gap_codec.code ->
  Iosim.Device.t ->
  sigma:int ->
  w:int ->
  int array ->
  Indexing.Instance.t

(** The generalized scheme of [16] (mentioned in §1.2): explicit,
    possibly non-geometric bin widths per level.  [widths] must start
    with 1 (the per-character level) and be strictly increasing; each
    width should divide into the next for the greedy cover to align. *)
val build_widths :
  ?code:Cbitmap.Gap_codec.code ->
  Iosim.Device.t ->
  sigma:int ->
  widths:int list ->
  int array ->
  t
