(** Two-level binned bitmap index (§1.2, "binning"): the alphabet is
    divided into bins of [w] consecutive characters; a compressed
    bitmap is stored for every bin (all occurrences of its characters)
    in addition to the per-character compressed bitmaps.  A range
    query uses whole-bin bitmaps for the interior of the range and
    per-character bitmaps at the two fringes, so fewer than
    [ℓ/w + 2w] bitmaps are merged.

    Space is roughly twice the per-character index; query time
    improves for wide ranges — the two-level point on the paper's
    time/space trade-off curve. *)

type t

val build :
  ?code:Cbitmap.Gap_codec.code ->
  Iosim.Device.t ->
  sigma:int ->
  w:int ->
  int array ->
  t

val query : t -> lo:int -> hi:int -> Indexing.Answer.t
val size_bits : t -> int

val instance :
  ?code:Cbitmap.Gap_codec.code ->
  Iosim.Device.t ->
  sigma:int ->
  w:int ->
  int array ->
  Indexing.Instance.t
