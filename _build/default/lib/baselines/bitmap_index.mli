(** Uncompressed (equality-encoded) bitmap index: one explicit [n]-bit
    bitmap per character, the classical optimal solution for constant
    [σ] (§1.2).  A range query of width [ℓ] reads [ℓ·n] bits no matter
    how sparse the rows are — the space and query extreme the paper's
    structure strictly improves on for large alphabets. *)

type t

val build : Iosim.Device.t -> sigma:int -> int array -> t
val query : t -> lo:int -> hi:int -> Indexing.Answer.t
val size_bits : t -> int
val instance : Iosim.Device.t -> sigma:int -> int array -> Indexing.Instance.t
