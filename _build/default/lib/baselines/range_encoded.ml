type t = {
  device : Iosim.Device.t;
  n : int;
  sigma : int;
  rows : Iosim.Device.region array; (* rows.(a): bitmap of { i | x_i <= a } *)
}

let build device ~sigma x =
  let n = Array.length x in
  let rows =
    Array.init sigma (fun a ->
        let buf = Bitio.Bitbuf.create ~capacity:n () in
        Array.iter (fun c -> Bitio.Bitbuf.write_bit buf (c <= a)) x;
        Iosim.Device.store ~align_block:true device buf)
  in
  { device; n; sigma; rows }

let query t ~lo ~hi =
  if lo < 0 || hi >= t.sigma || lo > hi then invalid_arg "Range_encoded.query";
  (* Read row hi and (if lo > 0) row lo-1 in lockstep; emit positions
     set in the former but not the latter. *)
  let r_hi = Iosim.Device.cursor t.device ~pos:t.rows.(hi).Iosim.Device.off in
  let r_lo =
    if lo = 0 then None
    else
      Some
        (Iosim.Device.cursor t.device ~pos:t.rows.(lo - 1).Iosim.Device.off)
  in
  let out = ref [] in
  let i = ref 0 in
  while !i < t.n do
    let w = min 32 (t.n - !i) in
    let a = r_hi.Bitio.Reader.read_bits w in
    let b = match r_lo with None -> 0 | Some r -> r.Bitio.Reader.read_bits w in
    let d = a land lnot b in
    if d <> 0 then
      for k = 0 to w - 1 do
        if d land (1 lsl (w - 1 - k)) <> 0 then out := (!i + k) :: !out
      done;
    i := !i + w
  done;
  Indexing.Answer.Direct
    (Cbitmap.Posting.of_sorted_array (Array.of_list (List.rev !out)))

let size_bits t =
  let bb = Iosim.Device.block_bits t.device in
  Array.fold_left
    (fun acc (r : Iosim.Device.region) -> acc + ((r.len + bb - 1) / bb * bb))
    0 t.rows

let instance device ~sigma x =
  let t = build device ~sigma x in
  {
    Indexing.Instance.name = "range-encoded";
    device;
    n = t.n;
    sigma;
    size_bits = size_bits t;
    query = (fun ~lo ~hi -> query t ~lo ~hi);
  }
