lib/baselines/range_encoded.ml: Array Bitio Cbitmap Indexing Iosim List
