lib/baselines/bitmap_index.mli: Indexing Iosim
