lib/baselines/multires_index.ml: Array Cbitmap Indexing List Printf
