lib/baselines/wavelet.mli: Indexing Iosim
