lib/baselines/btree_dynamic.ml: Array Bitio Cbitmap Indexing Iosim
