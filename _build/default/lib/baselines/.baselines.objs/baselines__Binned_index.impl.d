lib/baselines/binned_index.ml: Array Cbitmap Indexing List Printf
