lib/baselines/multires_index.mli: Cbitmap Indexing Iosim
