lib/baselines/wavelet.ml: Array Bitio Cbitmap Indexing Iosim List
