lib/baselines/bitmap_index.ml: Array Bitio Cbitmap Indexing Iosim
