lib/baselines/cbitmap_index.mli: Cbitmap Indexing Iosim
