lib/baselines/cbitmap_index.ml: Array Indexing
