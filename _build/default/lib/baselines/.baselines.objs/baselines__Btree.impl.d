lib/baselines/btree.ml: Array Bitio Cbitmap Indexing Iosim
