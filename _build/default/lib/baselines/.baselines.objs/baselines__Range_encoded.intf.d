lib/baselines/range_encoded.mli: Indexing Iosim
