lib/baselines/btree_dynamic.mli: Indexing Iosim
