lib/baselines/btree.mli: Indexing Iosim
