lib/baselines/binned_index.mli: Cbitmap Indexing Iosim
