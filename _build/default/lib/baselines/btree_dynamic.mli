(** Insertable external-memory B+tree secondary index.

    The dynamic counterpart of {!Btree}: (character, position) keys in
    one-block nodes, leaves chained with next pointers, top-down
    descent and bottom-up splits, everything read and written through
    the device so every update costs its true [O(lg_b n)] block
    read-modify-writes.  This is the classical comparison point for
    §4: B-trees update cheaply but their queries keep paying
    [Θ(lg n)] bits per reported position. *)

type t

(** An empty index. *)
val create : Iosim.Device.t -> sigma:int -> n_hint:int -> t

(** Build by inserting a whole column. *)
val build : Iosim.Device.t -> sigma:int -> int array -> t

(** Number of stored keys. *)
val cardinal : t -> int

(** Tree height (1 = the root is a leaf). *)
val height : t -> int

val insert : t -> char_:int -> pos:int -> unit
val query : t -> lo:int -> hi:int -> Indexing.Answer.t
val size_bits : t -> int
val instance : Iosim.Device.t -> sigma:int -> int array -> Indexing.Instance.t
