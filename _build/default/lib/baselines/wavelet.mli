(** Wavelet tree baseline.

    The modern in-memory succinct structure for exactly this problem
    (rank/select dictionaries per level, [n·lg σ (1+o(1))] bits), and
    the natural point of comparison the paper's line of work competes
    with: a wavelet tree answers alphabet range queries with
    [O(lg σ)] rank operations per *navigation* but needs [Θ(lg σ)]
    {e random} accesses per reported position to map results back to
    string order — each an I/O in the worst case, where the paper's
    index streams the compressed answer sequentially.

    Implemented as a binary tree of per-level bitvectors stored on the
    device (every bit inspected during a query is a counted device
    read), with in-memory rank directories doing the arithmetic. *)

type t

val build : Iosim.Device.t -> sigma:int -> int array -> t

(** Number of levels, [lg σ2]. *)
val levels : t -> int

(** [access t i] is the character at position [i] (top-down walk). *)
val access : t -> int -> int

(** Alphabet range query: positions with character in [lo..hi]. *)
val query : t -> lo:int -> hi:int -> Indexing.Answer.t

val size_bits : t -> int

val instance : Iosim.Device.t -> sigma:int -> int array -> Indexing.Instance.t
