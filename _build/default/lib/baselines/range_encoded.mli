(** Range-encoded bitmap index of O'Neil–Quass [14] (§1.2): for every
    character [a] an explicit [n]-bit bitmap of the positions whose
    character is [<= a].  Any range query is answered from exactly two
    rows ([B_hi and not B_{lo-1}]), reading [O(n/B)] blocks — the
    fast-query extreme whose space, [σ·n] bits, the paper cites as
    [n·σ^{1-o(1)}]. *)

type t

val build : Iosim.Device.t -> sigma:int -> int array -> t
val query : t -> lo:int -> hi:int -> Indexing.Answer.t
val size_bits : t -> int
val instance : Iosim.Device.t -> sigma:int -> int array -> Indexing.Instance.t
