(** Universal hash families, including the split family of §3.

    The approximate index stores, for each position set [S], hashed
    sets [h_j(S)] where [h_j : [n] -> [2^(2^j)]].  The paper's
    recommended family splits [i] into [(i1, i2)] — [i2] the [2^j]
    least significant bits — and sets [h_j(i1, i2) = g_j(i1) xor i2]
    with [g_j] drawn from any universal family.  Its key property is
    cheap preimage enumeration: [h_j^{-1}(s) = { (i1, s xor g_j(i1)) }]. *)

(** Deterministic splittable PRNG (splitmix64) used to draw hash
    functions reproducibly. *)
module Rng : sig
  type t

  val create : seed:int -> t
  val next : t -> int  (** 62-bit non-negative *)

  val below : t -> int -> int  (** uniform in [0;bound) *)

  val float : t -> float  (** uniform in [0;1) *)
end

(** A universal function from non-negative ints to [\[0; 2^out_bits)],
    implemented as multiply-shift with random odd multiplier. *)
type t

val create : Rng.t -> out_bits:int -> t
val out_bits : t -> int
val hash : t -> int -> int

(** {1 The §3 split family} *)

module Split : sig
  type t

  (** [create rng ~j] draws [h_j : nat -> [2^(2^j)]] with output width
      [2^j] bits ([0 <= j <= 5], so universes up to [2^32]).  When
      [2^j] exceeds [lg n] the function is injective on [\[0;n)] and
      has no false positives. *)
  val create : Rng.t -> j:int -> t

  val j : t -> int

  (** Output width in bits, [2^j]. *)
  val out_bits : t -> int

  val hash : t -> int -> int

  (** [preimage t ~n s] enumerates all [i in [0;n)] with
      [hash t i = s], in increasing order. *)
  val preimage : t -> n:int -> int -> int list

  (** [iter_preimage t ~n s f] calls [f] on each preimage element
      without materializing the list. *)
  val iter_preimage : t -> n:int -> int -> (int -> unit) -> unit
end
