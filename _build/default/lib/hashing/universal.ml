module Rng = struct
  (* splitmix64, truncated to OCaml's 63-bit ints (we keep 62 bits to
     stay non-negative). *)
  type t = { mutable state : int64 }

  let create ~seed = { state = Int64.of_int seed }

  let next64 t =
    t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
    let z = t.state in
    let z =
      Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
        0xBF58476D1CE4E5B9L
    in
    let z =
      Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
        0x94D049BB133111EBL
    in
    Int64.logxor z (Int64.shift_right_logical z 31)

  let next t = Int64.to_int (Int64.shift_right_logical (next64 t) 2)

  let below t bound =
    if bound <= 0 then invalid_arg "Rng.below";
    next t mod bound

  let float t = float_of_int (next t) /. 4611686018427387904.0 (* 2^62 *)
end

type t = { multiplier : int; out_bits : int }

let word_bits = 62

let create rng ~out_bits =
  if out_bits < 0 || out_bits > word_bits then invalid_arg "Universal.create";
  { multiplier = Rng.next rng lor 1; out_bits }

let out_bits t = t.out_bits

let hash t x =
  if t.out_bits = 0 then 0
  else ((t.multiplier * x) land max_int) lsr (word_bits - t.out_bits)

module Split = struct
  (* Alias the multiply-shift hash before this module defines its own
     [hash]. *)
  let base_hash = hash

  type nonrec t = {
    j : int;
    low_bits : int; (* 2^j, width of i2 and of the output *)
    g : t; (* universal on the high part *)
  }

  let create rng ~j =
    if j < 0 || j > 5 then invalid_arg "Split.create: j out of range";
    let low_bits = 1 lsl j in
    { j; low_bits; g = create rng ~out_bits:low_bits }

  let j t = t.j
  let out_bits t = t.low_bits

  let split t i = (i lsr t.low_bits, i land ((1 lsl t.low_bits) - 1))

  let hash t i =
    let i1, i2 = split t i in
    base_hash t.g i1 lxor i2

  let iter_preimage t ~n s f =
    if n > 0 then begin
      let max_i1 = (n - 1) lsr t.low_bits in
      for i1 = 0 to max_i1 do
        let i2 = s lxor base_hash t.g i1 in
        let i = (i1 lsl t.low_bits) lor i2 in
        if i < n then f i
      done
    end

  let preimage t ~n s =
    let acc = ref [] in
    iter_preimage t ~n s (fun i -> acc := i :: !acc);
    List.rev !acc
end
