lib/hashing/universal.mli:
