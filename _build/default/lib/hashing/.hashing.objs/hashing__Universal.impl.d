lib/hashing/universal.ml: Int64 List
