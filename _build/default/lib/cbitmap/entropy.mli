(** Empirical 0th-order entropy of a string over [Σ = {0..σ-1}].

    The paper's Theorem 2 bounds the index size by [O(n·H0 + n +
    σ·lg²n)] bits; the experiments compare measured sizes against
    [n·H0] computed here. *)

(** Per-character counts of a string given as an int array (characters
    are [0..σ-1]). *)
val counts : sigma:int -> int array -> int array

(** [h0 ~sigma x] in bits per symbol. *)
val h0 : sigma:int -> int array -> float

(** [n * h0], the entropy lower bound for the whole string, in bits. *)
val nh0_bits : sigma:int -> int array -> float

(** Sum over characters of [lg (n choose z_a)] — the information
    bound for storing each character's position set independently. *)
val sum_binomial_bits : sigma:int -> int array -> float
