type t = {
  u : int;
  m : int;
  low_bits : int;
  lows : Bitio.Bitbuf.t; (* m fields of low_bits bits *)
  highs : Rank_select.t; (* unary-coded high parts: m ones among m + u/2^l *)
}

let encode ~u posting =
  if u <= 0 then invalid_arg "Elias_fano.encode: universe";
  let m = Posting.cardinal posting in
  let low_bits =
    if m = 0 then 0
    else max 0 (Bitio.Codes.ceil_log2 (max 1 (u / m)))
  in
  let lows = Bitio.Bitbuf.create ~capacity:(m * max 1 low_bits) () in
  let high_positions = ref [] in
  let idx = ref 0 in
  Posting.iter
    (fun v ->
      if v >= u then invalid_arg "Elias_fano.encode: element >= universe";
      if low_bits > 0 then
        Bitio.Bitbuf.write_bits lows ~width:low_bits
          (v land ((1 lsl low_bits) - 1));
      let high = v lsr low_bits in
      (* The k-th element's high part is stored as a one at position
         high + k of the upper bitvector. *)
      high_positions := (high + !idx) :: !high_positions;
      incr idx)
    posting;
  let upper_len = (if m = 0 then 0 else m + (u lsr low_bits)) + 1 in
  let highs =
    Rank_select.of_posting ~n:upper_len
      (Posting.of_sorted_array (Array.of_list (List.rev !high_positions)))
  in
  { u; m; low_bits; lows; highs }

let cardinal t = t.m
let universe t = t.u

let get t k =
  if k < 0 || k >= t.m then invalid_arg "Elias_fano.get";
  let high = Rank_select.select1 t.highs k - k in
  let low =
    if t.low_bits = 0 then 0
    else Bitio.Bitbuf.read_bits t.lows ~pos:(k * t.low_bits) ~width:t.low_bits
  in
  (high lsl t.low_bits) lor low

let successor t x =
  if t.m = 0 then None
  else begin
    (* Binary search on get (monotone). *)
    let lo = ref 0 and hi = ref (t.m - 1) in
    if get t !hi < x then None
    else begin
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if get t mid >= x then hi := mid else lo := mid + 1
      done;
      Some (get t !lo)
    end
  end

let mem t x = match successor t x with Some v -> v = x | None -> false

let decode t =
  Posting.of_sorted_array (Array.init t.m (get t))

let size_bits t =
  Bitio.Bitbuf.length t.lows + Rank_select.size_bits t.highs

let bits_per_element t =
  if t.m = 0 then 0.0
  else 2.0 +. (log (float_of_int t.u /. float_of_int t.m) /. log 2.0)
