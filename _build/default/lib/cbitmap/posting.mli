(** Sets of positions (RID lists), represented as sorted arrays of
    distinct non-negative integers.

    This is the uncompressed, in-memory view of a bitmap: the ground
    truth that every index must reproduce, and the value produced by
    decompressing query answers. *)

type t

val empty : t

(** Sorts and removes duplicates. *)
val of_list : int list -> t

(** [of_sorted_array a] validates that [a] is strictly increasing and
    non-negative; raises [Invalid_argument] otherwise.  The array is
    copied. *)
val of_sorted_array : int array -> t

(** Positions of set bits of [s], where [s.[i] = '1']. *)
val of_bitstring : string -> t

val to_list : t -> int list
val to_array : t -> int array
val cardinal : t -> int
val is_empty : t -> bool

(** [get t i] is the [i]-th smallest element. *)
val get : t -> int -> int

(** Binary-search membership. *)
val mem : t -> int -> bool

(** [rank t x] is the number of elements strictly below [x]. *)
val rank : t -> int -> int

val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t

(** [complement ~n t] is [{0..n-1} \ t]. *)
val complement : n:int -> t -> t

(** Multi-way union (heap-based k-way merge). *)
val union_many : t list -> t

val iter : (int -> unit) -> t -> unit
val fold : ('a -> int -> 'a) -> 'a -> t -> 'a
val equal : t -> t -> bool
val subset : t -> t -> bool

(** Elements in [\[lo;hi\]] (inclusive). *)
val filter_range : lo:int -> hi:int -> t -> t

val pp : Format.formatter -> t -> unit
