(** Blocked gap encoding (§4.2 of the paper).

    A compressed bitmap is cut into blocks of at most [payload_bits]
    bits such that the first codeword of every block is an absolute
    position (not a gap) and no codeword straddles a block boundary.
    This at most doubles the space ([payload_bits] should be roughly
    [B/2] for device blocks of [B] bits) and makes each block
    independently decodable, which is what the buffered bitmap index
    of Theorem 6 needs for its leaves. *)

type t

(** [encode ~payload_bits posting].  Requires [payload_bits] large
    enough for any single codeword (≥ [2 lg n + 1] bits is always
    safe); raises [Invalid_argument] if a codeword does not fit. *)
val encode : ?code:Gap_codec.code -> payload_bits:int -> Posting.t -> t

val block_count : t -> int

(** Total occupied payload bits (excludes per-block slack). *)
val payload_bits_used : t -> int

(** Number of positions stored in block [i]. *)
val count : t -> int -> int

(** Smallest position stored in block [i] (it is encoded absolutely). *)
val first : t -> int -> int

(** The encoded bits of block [i]. *)
val block : t -> int -> Bitio.Bitbuf.t

(** Decode a single block. *)
val decode_block : ?code:Gap_codec.code -> t -> int -> Posting.t

(** Decode everything. *)
val decode : ?code:Gap_codec.code -> t -> Posting.t

(** Index of the first block that can contain a position [>= x]
    (i.e. the last block whose [first] is [<= x], since positions are
    globally sorted), or [None] when empty. *)
val seek_block : t -> int -> int option
