type t = int array

let empty = [||]

let of_sorted_array a =
  Array.iteri
    (fun i v ->
      if v < 0 then invalid_arg "Posting.of_sorted_array: negative";
      if i > 0 && a.(i - 1) >= v then
        invalid_arg "Posting.of_sorted_array: not strictly increasing")
    a;
  Array.copy a

let of_list l =
  let a = Array.of_list l in
  Array.sort compare a;
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    if a.(0) < 0 then invalid_arg "Posting.of_list: negative";
    let out = Array.make n 0 in
    let k = ref 0 in
    Array.iter
      (fun v ->
        if !k = 0 || out.(!k - 1) <> v then begin
          out.(!k) <- v;
          incr k
        end)
      a;
    Array.sub out 0 !k
  end

let of_bitstring s =
  let acc = ref [] in
  String.iteri (fun i c -> if c = '1' then acc := i :: !acc) s;
  Array.of_list (List.rev !acc)

let to_list = Array.to_list
let to_array = Array.copy
let cardinal = Array.length
let is_empty t = Array.length t = 0
let get t i = t.(i)

(* Index of the first element >= x, or length if none. *)
let lower_bound t x =
  let lo = ref 0 and hi = ref (Array.length t) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.(mid) < x then lo := mid + 1 else hi := mid
  done;
  !lo

let mem t x =
  let i = lower_bound t x in
  i < Array.length t && t.(i) = x

let rank t x = lower_bound t x

let union a b =
  let na = Array.length a and nb = Array.length b in
  let out = Array.make (na + nb) 0 in
  let i = ref 0 and j = ref 0 and k = ref 0 in
  while !i < na || !j < nb do
    let v =
      if !i >= na then begin
        let v = b.(!j) in
        incr j;
        v
      end
      else if !j >= nb then begin
        let v = a.(!i) in
        incr i;
        v
      end
      else if a.(!i) < b.(!j) then begin
        let v = a.(!i) in
        incr i;
        v
      end
      else if a.(!i) > b.(!j) then begin
        let v = b.(!j) in
        incr j;
        v
      end
      else begin
        let v = a.(!i) in
        incr i;
        incr j;
        v
      end
    in
    out.(!k) <- v;
    incr k
  done;
  Array.sub out 0 !k

let inter a b =
  let na = Array.length a and nb = Array.length b in
  let out = Array.make (min na nb) 0 in
  let i = ref 0 and j = ref 0 and k = ref 0 in
  while !i < na && !j < nb do
    if a.(!i) < b.(!j) then incr i
    else if a.(!i) > b.(!j) then incr j
    else begin
      out.(!k) <- a.(!i);
      incr k;
      incr i;
      incr j
    end
  done;
  Array.sub out 0 !k

let diff a b =
  let na = Array.length a and nb = Array.length b in
  let out = Array.make na 0 in
  let i = ref 0 and j = ref 0 and k = ref 0 in
  while !i < na do
    if !j >= nb || a.(!i) < b.(!j) then begin
      out.(!k) <- a.(!i);
      incr k;
      incr i
    end
    else if a.(!i) > b.(!j) then incr j
    else begin
      incr i;
      incr j
    end
  done;
  Array.sub out 0 !k

let complement ~n t =
  let out = Array.make (n - Array.length t) 0 in
  let k = ref 0 and j = ref 0 in
  for v = 0 to n - 1 do
    if !j < Array.length t && t.(!j) = v then incr j
    else begin
      out.(!k) <- v;
      incr k
    end
  done;
  if !k <> Array.length out then
    invalid_arg "Posting.complement: elements outside [0;n)";
  out

(* Binary min-heap of (value, source index) used for k-way merge. *)
module Heap = struct
  type t = { mutable data : (int * int) array; mutable size : int }

  let create cap = { data = Array.make (max 1 cap) (0, 0); size = 0 }

  let swap h i j =
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(j);
    h.data.(j) <- tmp

  let rec up h i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if fst h.data.(i) < fst h.data.(parent) then begin
        swap h i parent;
        up h parent
      end
    end

  let rec down h i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let smallest = ref i in
    if l < h.size && fst h.data.(l) < fst h.data.(!smallest) then smallest := l;
    if r < h.size && fst h.data.(r) < fst h.data.(!smallest) then smallest := r;
    if !smallest <> i then begin
      swap h i !smallest;
      down h !smallest
    end

  let push h v =
    if h.size = Array.length h.data then begin
      let data = Array.make (2 * h.size) (0, 0) in
      Array.blit h.data 0 data 0 h.size;
      h.data <- data
    end;
    h.data.(h.size) <- v;
    h.size <- h.size + 1;
    up h (h.size - 1)

  let pop h =
    let top = h.data.(0) in
    h.size <- h.size - 1;
    h.data.(0) <- h.data.(h.size);
    down h 0;
    top

  let is_empty h = h.size = 0
end

let union_many lists =
  let lists = Array.of_list lists in
  let k = Array.length lists in
  if k = 0 then empty
  else begin
    let total = Array.fold_left (fun acc a -> acc + Array.length a) 0 lists in
    let out = Array.make total 0 in
    let heap = Heap.create k in
    let idx = Array.make k 0 in
    Array.iteri
      (fun s a -> if Array.length a > 0 then Heap.push heap (a.(0), s))
      lists;
    let m = ref 0 in
    while not (Heap.is_empty heap) do
      let v, s = Heap.pop heap in
      if !m = 0 || out.(!m - 1) <> v then begin
        out.(!m) <- v;
        incr m
      end;
      idx.(s) <- idx.(s) + 1;
      if idx.(s) < Array.length lists.(s) then
        Heap.push heap (lists.(s).(idx.(s)), s)
    done;
    Array.sub out 0 !m
  end

let iter = Array.iter
let fold = Array.fold_left
let equal a b = a = b

let subset a b =
  let nb = Array.length b in
  let rec go i j =
    if i >= Array.length a then true
    else if j >= nb then false
    else if a.(i) = b.(j) then go (i + 1) (j + 1)
    else if a.(i) > b.(j) then go i (j + 1)
    else false
  in
  go 0 0

let filter_range ~lo ~hi t =
  let i = lower_bound t lo and j = lower_bound t (hi + 1) in
  Array.sub t i (j - i)

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Format.pp_print_int)
    (Array.to_list t)
