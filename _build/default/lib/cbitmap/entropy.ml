let counts ~sigma x =
  let c = Array.make sigma 0 in
  Array.iter
    (fun v ->
      if v < 0 || v >= sigma then invalid_arg "Entropy.counts";
      c.(v) <- c.(v) + 1)
    x;
  c

let h0 ~sigma x =
  let n = Array.length x in
  if n = 0 then 0.0
  else begin
    let c = counts ~sigma x in
    let acc = ref 0.0 in
    Array.iter
      (fun z ->
        if z > 0 then begin
          let p = float_of_int z /. float_of_int n in
          acc := !acc -. (p *. (log p /. log 2.0))
        end)
      c;
    !acc
  end

let nh0_bits ~sigma x = float_of_int (Array.length x) *. h0 ~sigma x

let sum_binomial_bits ~sigma x =
  let n = Array.length x in
  let c = counts ~sigma x in
  Array.fold_left
    (fun acc z ->
      if z = 0 then acc else acc +. Gap_codec.binomial_entropy_bits ~n ~m:z)
    0.0 c
