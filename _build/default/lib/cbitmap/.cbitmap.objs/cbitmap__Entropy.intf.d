lib/cbitmap/entropy.mli:
