lib/cbitmap/posting.ml: Array Format List String
