lib/cbitmap/merge.mli: Posting
