lib/cbitmap/posting.mli: Format
