lib/cbitmap/gap_codec.ml: Array Bitio Posting
