lib/cbitmap/blocked.mli: Bitio Gap_codec Posting
