lib/cbitmap/wah.mli: Bitio Posting
