lib/cbitmap/blocked.ml: Array Bitio Gap_codec List Posting
