lib/cbitmap/rank_select.ml: Array Bitio Posting
