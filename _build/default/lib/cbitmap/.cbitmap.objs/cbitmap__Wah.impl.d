lib/cbitmap/wah.ml: Array Bitio List Posting
