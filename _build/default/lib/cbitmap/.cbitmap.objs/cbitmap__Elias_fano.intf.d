lib/cbitmap/elias_fano.mli: Posting
