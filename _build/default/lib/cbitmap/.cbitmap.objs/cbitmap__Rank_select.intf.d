lib/cbitmap/rank_select.mli: Bitio Posting
