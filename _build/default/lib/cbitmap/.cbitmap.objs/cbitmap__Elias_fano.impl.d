lib/cbitmap/elias_fano.ml: Array Bitio List Posting Rank_select
