lib/cbitmap/gap_codec.mli: Bitio Posting
