lib/cbitmap/entropy.ml: Array Gap_codec
