lib/cbitmap/merge.ml: Array List Posting
