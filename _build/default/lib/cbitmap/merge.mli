(** K-way merging of position streams.

    Queries in every tree-structured index answer a range by taking
    the union of the (compressed) bitmaps of the canonical nodes; this
    module merges the pull-based decoders of {!Gap_codec.stream}
    without materializing the inputs, so the I/O counters see exactly
    one sequential pass over each input. *)

type stream = unit -> int option

val of_posting : Posting.t -> stream
val of_array : int array -> stream

(** Union merge: duplicates across streams are emitted once. *)
val union : stream list -> stream

(** Drain a stream into a posting list. *)
val to_posting : stream -> Posting.t

(** [union_to_posting ss] = [to_posting (union ss)]. *)
val union_to_posting : stream list -> Posting.t

(** Count elements without storing them. *)
val length : stream -> int
