(** Elias–Fano encoding of monotone sequences.

    The modern quasi-succinct posting-list representation: a sorted
    set of [m] values below [u] in [m·(2 + lg(u/m)) + o(m)] bits with
    O(1) access to the [k]-th element and O(lg) successor queries —
    within 2 bits per element of the [lg (u choose m)] bound the paper
    compresses to.  Provided as an alternative substrate to gap coding
    (ablation E13): unlike gamma streams it supports random access
    without decoding a prefix. *)

type t

(** [encode ~u posting]: all elements must be [< u]. *)
val encode : u:int -> Posting.t -> t

val cardinal : t -> int
val universe : t -> int

(** [get t k] is the [k]-th smallest element, O(1). *)
val get : t -> int -> int

(** Smallest element [>= x], or [None]. *)
val successor : t -> int -> int option

val mem : t -> int -> bool
val decode : t -> Posting.t

(** Total size in bits (lower bits + upper bits + select directory). *)
val size_bits : t -> int

(** The information-theoretic 2 + lg(u/m) bits/element reference. *)
val bits_per_element : t -> float
