type stream = unit -> int option

let of_array a =
  let i = ref 0 in
  fun () ->
    if !i >= Array.length a then None
    else begin
      let v = a.(!i) in
      incr i;
      Some v
    end

let of_posting p = of_array (Posting.to_array p)

(* Min-heap of (value, stream index). *)
type heap = { mutable data : (int * int) array; mutable size : int }

let heap_create cap = { data = Array.make (max 1 cap) (0, 0); size = 0 }

let heap_swap h i j =
  let tmp = h.data.(i) in
  h.data.(i) <- h.data.(j);
  h.data.(j) <- tmp

let rec heap_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if fst h.data.(i) < fst h.data.(parent) then begin
      heap_swap h i parent;
      heap_up h parent
    end
  end

let rec heap_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.size && fst h.data.(l) < fst h.data.(!smallest) then smallest := l;
  if r < h.size && fst h.data.(r) < fst h.data.(!smallest) then smallest := r;
  if !smallest <> i then begin
    heap_swap h i !smallest;
    heap_down h !smallest
  end

let heap_push h v =
  if h.size = Array.length h.data then begin
    let data = Array.make (2 * h.size) (0, 0) in
    Array.blit h.data 0 data 0 h.size;
    h.data <- data
  end;
  h.data.(h.size) <- v;
  h.size <- h.size + 1;
  heap_up h (h.size - 1)

let heap_pop h =
  let top = h.data.(0) in
  h.size <- h.size - 1;
  h.data.(0) <- h.data.(h.size);
  heap_down h 0;
  top

let union streams =
  let streams = Array.of_list streams in
  let heap = heap_create (Array.length streams) in
  Array.iteri
    (fun i s -> match s () with Some v -> heap_push heap (v, i) | None -> ())
    streams;
  let last = ref (-1) in
  let rec next () =
    if heap.size = 0 then None
    else begin
      let v, i = heap_pop heap in
      (match streams.(i) () with
      | Some v' -> heap_push heap (v', i)
      | None -> ());
      if v = !last then next ()
      else begin
        last := v;
        Some v
      end
    end
  in
  next

let to_posting s =
  let acc = ref [] in
  let rec go () =
    match s () with
    | Some v ->
        acc := v :: !acc;
        go ()
    | None -> ()
  in
  go ();
  Posting.of_sorted_array (Array.of_list (List.rev !acc))

let union_to_posting ss = to_posting (union ss)

let length s =
  let rec go acc = match s () with Some _ -> go (acc + 1) | None -> acc in
  go 0
