type node = {
  mutable id : int;
  level : int;
  s : int;
  e : int;
  clo : int;
  chi : int;
  children : node array;
  mutable leaf_index : int;
  mutable level_index : int;
}

type t = {
  root : node;
  height : int;
  c : int;
  n : int;
  sigma : int;
  nodes : node array;
  leaves : node array;
  internal_by_level : node array array;
  entry_char : int array;
  entry_pos : int array;
  char_start : int array;
}

let weight v = v.e - v.s
let is_leaf v = Array.length v.children = 0

let build ~c ~sigma x =
  if c < 2 then invalid_arg "Wbb.build: c >= 2";
  let n = Array.length x in
  if n = 0 then invalid_arg "Wbb.build: empty string";
  (* Entries: (char asc, position asc). *)
  let char_start = Indexing.Common.prefix_counts ~sigma x in
  let entry_char = Array.make n 0 and entry_pos = Array.make n 0 in
  let cursor = Array.copy char_start in
  Array.iteri
    (fun pos ch ->
      let slot = cursor.(ch) in
      entry_char.(slot) <- ch;
      entry_pos.(slot) <- pos;
      cursor.(ch) <- slot + 1)
    x;
  (* Recursive balanced c-ary split, pruned at single-character
     nodes. *)
  let rec make level s e =
    let clo = entry_char.(s) and chi = entry_char.(e - 1) in
    let children =
      if clo = chi then [||]
      else begin
        let size = e - s in
        let parts = min c size in
        Array.init parts (fun i ->
            let cs = s + (size * i / parts) in
            let ce = s + (size * (i + 1) / parts) in
            make (level + 1) cs ce)
      end
    in
    { id = -1; level; s; e; clo; chi; children; leaf_index = -1; level_index = -1 }
  in
  let root = make 1 0 n in
  let all = ref [] in
  let rec collect v =
    all := v :: !all;
    Array.iter collect v.children
  in
  collect root;
  let nodes = Array.of_list !all in
  (* Breadth-first order: (level, entry range). *)
  Array.sort
    (fun a b ->
      if a.level <> b.level then compare a.level b.level else compare a.s b.s)
    nodes;
  Array.iteri (fun i v -> v.id <- i) nodes;
  let height = Array.fold_left (fun acc v -> max acc v.level) 1 nodes in
  let leaves =
    let l = Array.to_list nodes in
    Array.of_list (List.filter is_leaf l)
  in
  Array.sort (fun a b -> compare a.s b.s) leaves;
  Array.iteri (fun i v -> v.leaf_index <- i) leaves;
  let internal_by_level =
    Array.init height (fun l ->
        let lv = l + 1 in
        let sel =
          List.filter
            (fun v -> v.level = lv && not (is_leaf v))
            (Array.to_list nodes)
        in
        let arr = Array.of_list sel in
        Array.sort (fun a b -> compare a.s b.s) arr;
        Array.iteri (fun i v -> v.level_index <- i) arr;
        arr)
  in
  {
    root;
    height;
    c;
    n;
    sigma;
    nodes;
    leaves;
    internal_by_level;
    entry_char;
    entry_pos;
    char_start;
  }

let positions t v =
  let arr = Array.sub t.entry_pos v.s (weight v) in
  Array.sort compare arr;
  Cbitmap.Posting.of_sorted_array arr

let decompose t ~s ~e =
  let canon = ref [] and spine = ref [] in
  let rec go v =
    if v.e <= s || v.s >= e then ()
    else if s <= v.s && v.e <= e then canon := v :: !canon
    else begin
      spine := v :: !spine;
      if is_leaf v then
        invalid_arg "Wbb.decompose: query range not aligned to leaves";
      Array.iter go v.children
    end
  in
  go t.root;
  (List.rev !canon, List.rev !spine)

let frontier _t v ~stored =
  let acc = ref [] in
  let rec go u =
    if stored u then acc := u :: !acc
    else begin
      if is_leaf u then invalid_arg "Wbb.frontier: leaf not stored";
      Array.iter go u.children
    end
  in
  go v;
  List.rev !acc

let node_count t = Array.length t.nodes
