(** The pruned weight-balanced tree [W] of §2.2.

    The [n] character instances of [x], ordered primarily by character
    and secondarily by position, are the (conceptual) leaves; we call
    their indices in this order {e entries}.  The tree is [c]-ary and
    balanced, so a node at depth [d] from the root has weight
    [Θ(n/c^d)].  It is pruned: a node all of whose entries carry the
    same character keeps no children.  Pruned leaves therefore cover
    entry ranges of a single character, which guarantees that every
    alphabet range query covers a disjoint union of whole subtrees —
    the canonical decomposition computed by {!decompose}.

    This module is the in-memory combinatorial structure; device
    layout and bitmap storage live in {!Secidx.Static_index}. *)

type node = {
  mutable id : int;  (** breadth-first identifier *)
  level : int;  (** 1 = root *)
  s : int;  (** first entry covered (inclusive) *)
  e : int;  (** one past the last entry covered *)
  clo : int;  (** character of entry [s] *)
  chi : int;  (** character of entry [e-1] *)
  children : node array;  (** empty iff pruned leaf *)
  mutable leaf_index : int;  (** rank among leaves, [-1] for internal *)
  mutable level_index : int;
      (** rank among {e internal} nodes of the same level, [-1] for
          leaves *)
}

type t = {
  root : node;
  height : int;  (** deepest level *)
  c : int;
  n : int;
  sigma : int;
  nodes : node array;  (** by [id], breadth-first *)
  leaves : node array;  (** left-to-right *)
  internal_by_level : node array array;
      (** [internal_by_level.(l)] = internal nodes at level [l+1],
          left-to-right *)
  entry_char : int array;  (** character of each entry *)
  entry_pos : int array;  (** string position of each entry *)
  char_start : int array;
      (** [char_start.(a)] = first entry of character [a]; length
          [sigma + 1] (the prefix-count array [A] of §2.1) *)
}

(** [build ~c ~sigma x].  [c >= 2] is the branching parameter. *)
val build : c:int -> sigma:int -> int array -> t

val weight : node -> int
val is_leaf : node -> bool

(** String positions of the entries below [v], sorted increasingly. *)
val positions : t -> node -> Cbitmap.Posting.t

(** Canonical decomposition: maximal nodes whose entry range is fully
    inside [\[s;e)], in left-to-right order.  Requires [s] and [e] to
    be character boundaries (values of [char_start]) — guaranteed for
    alphabet range queries.  Also returns the list of visited
    (partially overlapping) nodes, i.e. the two root-to-boundary
    spines, for I/O accounting of the descent. *)
val decompose : t -> s:int -> e:int -> node list * node list

(** [frontier t v ~stored] expands [v] to the explicitly-stored nodes
    covering exactly its subtree: walking down, a node [u] is taken
    when [stored u] holds (leaves must always satisfy [stored]).  The
    result is in left-to-right order. *)
val frontier : t -> node -> stored:(node -> bool) -> node list

(** Total number of nodes; the paper bounds it by [O(σ·lg n)] for the
    pruned tree. *)
val node_count : t -> int
