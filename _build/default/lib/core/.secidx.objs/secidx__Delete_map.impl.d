lib/core/delete_map.ml: Iosim
