lib/core/wbb.mli: Cbitmap
