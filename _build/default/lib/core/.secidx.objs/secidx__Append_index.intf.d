lib/core/append_index.mli: Cbitmap Indexing Iosim
