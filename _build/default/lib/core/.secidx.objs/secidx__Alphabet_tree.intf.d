lib/core/alphabet_tree.mli: Indexing Iosim
