lib/core/wbb.ml: Array Cbitmap Indexing List
