lib/core/buffered_bitmap.mli: Cbitmap Indexing Iosim
