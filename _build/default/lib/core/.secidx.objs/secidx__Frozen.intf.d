lib/core/frozen.mli: Wbb
