lib/core/dynamic_index.ml: Array Bitio Buffered_bitmap Cbitmap Frozen Indexing Iosim List Wbb
