lib/core/buffered_bitmap.ml: Array Bitio Cbitmap Hashtbl Indexing Iosim List Option
