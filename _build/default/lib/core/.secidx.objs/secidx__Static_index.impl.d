lib/core/static_index.ml: Array Bitio Cbitmap Fun Hashtbl Indexing Iosim List Option Queue Wbb
