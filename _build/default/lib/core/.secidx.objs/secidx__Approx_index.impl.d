lib/core/approx_index.ml: Array Bitio Cbitmap Hashing Indexing List Option Static_index Wbb
