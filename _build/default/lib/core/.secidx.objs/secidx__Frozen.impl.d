lib/core/frozen.ml: Array List Wbb
