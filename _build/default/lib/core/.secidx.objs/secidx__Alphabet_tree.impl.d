lib/core/alphabet_tree.ml: Array Bitio Cbitmap Fun Indexing Iosim List
