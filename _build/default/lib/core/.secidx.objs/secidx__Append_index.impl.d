lib/core/append_index.ml: Array Bitio Cbitmap Frozen Hashtbl Indexing Iosim List Wbb
