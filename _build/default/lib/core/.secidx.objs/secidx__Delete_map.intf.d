lib/core/delete_map.mli: Iosim
