lib/core/static_index.mli: Cbitmap Indexing Iosim Wbb
