lib/core/dynamic_index.mli: Indexing Iosim
