lib/core/approx_index.mli: Cbitmap Hashing Indexing Iosim Static_index
