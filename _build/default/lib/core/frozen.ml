type key = int * int

type t = {
  wtree : Wbb.t;
  lo_keys : key array; (* by node id *)
  hi_keys : key array;
}

let tree t = t.wtree

let make (wtree : Wbb.t) ~sigma_total =
  let n = wtree.Wbb.n in
  let key_of_entry i =
    if i >= n then (sigma_total, 0)
    else (wtree.Wbb.entry_char.(i), wtree.Wbb.entry_pos.(i))
  in
  let nnodes = Array.length wtree.Wbb.nodes in
  let lo_keys = Array.make nnodes (0, 0) in
  let hi_keys = Array.make nnodes (0, 0) in
  Array.iter
    (fun (v : Wbb.node) ->
      lo_keys.(v.Wbb.id) <- key_of_entry v.Wbb.s;
      hi_keys.(v.Wbb.id) <- key_of_entry v.Wbb.e)
    wtree.Wbb.nodes;
  (* The leftmost path must own keys below the first entry. *)
  let rec extend_left (v : Wbb.node) =
    lo_keys.(v.Wbb.id) <- (0, 0);
    if not (Wbb.is_leaf v) then extend_left v.Wbb.children.(0)
  in
  extend_left wtree.Wbb.root;
  { wtree; lo_keys; hi_keys }

let lo_key t (v : Wbb.node) = t.lo_keys.(v.Wbb.id)
let hi_key t (v : Wbb.node) = t.hi_keys.(v.Wbb.id)

let contains t v k = compare (lo_key t v) k <= 0 && compare k (hi_key t v) < 0

let route_path t k =
  let rec go (v : Wbb.node) acc =
    let acc = v :: acc in
    if Wbb.is_leaf v then List.rev acc
    else begin
      (* The children tile v's interval, so exactly one contains k. *)
      let child = ref v.Wbb.children.(0) in
      Array.iter
        (fun ch -> if compare (lo_key t ch) k <= 0 then child := ch)
        v.Wbb.children;
      assert (contains t !child k);
      go !child acc
    end
  in
  if not (contains t t.wtree.Wbb.root k) then
    invalid_arg "Frozen.route_path: key outside root interval";
  go t.wtree.Wbb.root []

let decompose t ~klo ~khi =
  let canon = ref [] and partial = ref [] and spine = ref [] in
  let rec go (v : Wbb.node) =
    let lo = lo_key t v and hi = hi_key t v in
    if compare hi klo <= 0 || compare lo khi >= 0 then ()
    else if compare klo lo <= 0 && compare hi khi <= 0 then
      canon := v :: !canon
    else if Wbb.is_leaf v then partial := v :: !partial
    else begin
      spine := v :: !spine;
      Array.iter go v.Wbb.children
    end
  in
  go t.wtree.Wbb.root;
  (List.rev !canon, List.rev !partial, List.rev !spine)
