let cell_bits = 32

type t = {
  device : Iosim.Device.t;
  capacity : int;
  region : Iosim.Device.region; (* Fenwick cells: deleted counts *)
  flags : Iosim.Device.region; (* one deletion flag bit per position *)
  mutable deleted : int;
}

let create device ~capacity =
  if capacity <= 0 then invalid_arg "Delete_map.create";
  let region =
    Iosim.Device.alloc ~align_block:true device ((capacity + 1) * cell_bits)
  in
  let flags = Iosim.Device.alloc ~align_block:true device capacity in
  { device; capacity; region; flags; deleted = 0 }

let capacity t = t.capacity
let deleted_count t = t.deleted
let live_count t = t.capacity - t.deleted

let read_cell t i =
  Iosim.Device.read_bits t.device
    ~pos:(t.region.Iosim.Device.off + (i * cell_bits))
    ~width:cell_bits

let write_cell t i v =
  Iosim.Device.write_bits t.device
    ~pos:(t.region.Iosim.Device.off + (i * cell_bits))
    ~width:cell_bits v

let read_flag t i =
  Iosim.Device.read_bits t.device ~pos:(t.flags.Iosim.Device.off + i) ~width:1
  = 1

let write_flag t i =
  Iosim.Device.write_bits t.device ~pos:(t.flags.Iosim.Device.off + i) ~width:1 1

let is_deleted t i =
  if i < 0 || i >= t.capacity then invalid_arg "Delete_map.is_deleted";
  read_flag t i

(* Number of deleted positions <= i (Fenwick prefix sum, 1-based). *)
let deleted_upto t i =
  let acc = ref 0 in
  let j = ref (i + 1) in
  while !j > 0 do
    acc := !acc + read_cell t !j;
    j := !j - (!j land - !j)
  done;
  !acc

let delete t i =
  if i < 0 || i >= t.capacity then invalid_arg "Delete_map.delete";
  if not (read_flag t i) then begin
    write_flag t i;
    t.deleted <- t.deleted + 1;
    let j = ref (i + 1) in
    while !j <= t.capacity do
      write_cell t !j (read_cell t !j + 1);
      j := !j + (!j land - !j)
    done
  end

let to_external t i =
  if i < 0 || i >= t.capacity then invalid_arg "Delete_map.to_external";
  if read_flag t i then None else Some (i - deleted_upto t i)

let to_internal t k =
  if k < 0 || k >= live_count t then raise Not_found;
  (* Binary search the smallest i with (i+1) - deleted_upto(i) = k+1. *)
  let lo = ref 0 and hi = ref (t.capacity - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let live = mid + 1 - deleted_upto t mid in
    if live >= k + 1 then hi := mid else lo := mid + 1
  done;
  !lo

let needs_rebuild t = 2 * t.deleted > t.capacity

let size_bits t = t.region.Iosim.Device.len + t.flags.Iosim.Device.len
