(** Position translation under deletions (§4).

    The paper deletes by rewriting characters to [∞] (see
    {!Dynamic_index.delete}), which keeps positions stable.  For the
    "natural" semantics where positions are relative to the current
    (undeleted) string, it maintains a B-tree over the deleted
    positions with subtree sizes.  This module implements that
    translation structure as a device-resident Fenwick tree over the
    deletion flags: [to_internal]/[to_external] walk [O(lg n)] cells
    (consecutive cells share blocks, so the measured block I/Os are
    close to the paper's [O(lg_b n)]).

    When the deleted fraction exceeds one half, the paper performs
    global rebuilding; {!needs_rebuild} exposes that trigger to the
    owning index. *)

type t

(** [create device ~capacity] with all positions live. *)
val create : Iosim.Device.t -> capacity:int -> t

val capacity : t -> int
val deleted_count : t -> int

(** Live positions. *)
val live_count : t -> int

(** Mark an internal position deleted (idempotent). *)
val delete : t -> int -> unit

val is_deleted : t -> int -> bool

(** [to_internal t k] is the internal position of the [k]-th
    (0-based) live position.  Raises [Not_found] if [k >= live_count]. *)
val to_internal : t -> int -> int

(** [to_external t i] is the rank of internal position [i] among live
    positions, or [None] if [i] is deleted. *)
val to_external : t -> int -> int option

(** True once more than half the positions are deleted. *)
val needs_rebuild : t -> bool

val size_bits : t -> int
