(** Frozen-boundary view of a {!Wbb} tree, used by the dynamic
    structures (§4).

    The paper maintains weight balance by rebuilding subtrees; we
    instead freeze the tree's node boundaries — each node owns the
    half-open key interval (character, position) of its build-time
    entries — and route every later update through those frozen
    boundaries, rebuilding globally once enough updates accumulate
    (same amortized cost profile, see DESIGN.md).  Routing is
    deterministic: a key always belongs to exactly one node per level,
    so an [Add] and its matching [Remove] reach the same stored
    bitmaps.

    After updates a leaf may hold characters outside its build-time
    character (keys inserted between frozen boundaries), so range
    decomposition distinguishes {e partial} leaves whose contents a
    query must filter by current character. *)

type key = int * int (* (character, position), lexicographic *)

type t

(** [make tree ~sigma_total] computes frozen boundaries.
    [sigma_total] is the exclusive upper bound on characters (include
    the deletion character [∞] here). *)
val make : Wbb.t -> sigma_total:int -> t

val tree : t -> Wbb.t

(** Key interval owned by a node: [lo_key] inclusive, [hi_key]
    exclusive. *)
val lo_key : t -> Wbb.node -> key

val hi_key : t -> Wbb.node -> key

(** Root-to-leaf path owning [key]: every node on it contains the key
    in its interval.  The stored bitmaps of all materialized nodes on
    this path must reflect an update at [key]. *)
val route_path : t -> key -> Wbb.node list

(** [decompose t ~klo ~khi] splits the key range [\[klo; khi)] into:
    nodes fully inside (canonical, left-to-right), leaves partially
    overlapping (at most two, to be read and filtered), and the
    visited internal spine (for descent I/O accounting). *)
val decompose :
  t -> klo:key -> khi:key -> Wbb.node list * Wbb.node list * Wbb.node list
