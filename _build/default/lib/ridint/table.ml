type column = { name : string; sigma : int; values : int array }

type indexed_column = {
  col : column;
  index : Secidx.Static_index.t;
  approx : Secidx.Approx_index.t option;
}

type t = {
  device : Iosim.Device.t;
  nrows : int;
  cols : indexed_column array;
}

type condition = { column : string; lo : int; hi : int }

let rows t = t.nrows
let columns t = Array.map (fun ic -> ic.col) t.cols
let device t = t.device

let validate cols =
  match cols with
  | [] -> invalid_arg "Table.create: no columns"
  | first :: rest ->
      let n = Array.length first.values in
      List.iter
        (fun c ->
          if Array.length c.values <> n then
            invalid_arg "Table.create: column lengths differ")
        rest;
      n

let create ?c device cols =
  let nrows = validate cols in
  let cols =
    Array.of_list
      (List.map
         (fun col ->
           {
             col;
             index = Secidx.Static_index.build ?c device ~sigma:col.sigma col.values;
             approx = None;
           })
         cols)
  in
  { device; nrows; cols }

let create_approx ?seed ?c device cols =
  let nrows = validate cols in
  let cols =
    Array.of_list
      (List.map
         (fun col ->
           let approx =
             Secidx.Approx_index.build ?seed ?c device ~sigma:col.sigma
               col.values
           in
           (* The approximate index embeds its own exact base index;
              reuse it instead of building a second copy. *)
           { col; index = Secidx.Approx_index.base approx; approx = Some approx })
         cols)
  in
  { device; nrows; cols }

let find_col t name =
  match Array.find_opt (fun ic -> ic.col.name = name) t.cols with
  | Some ic -> ic
  | None -> invalid_arg ("Table: unknown column " ^ name)

let check_condition t cond row =
  let ic = find_col t cond.column in
  let v = ic.col.values.(row) in
  v >= cond.lo && v <= cond.hi

let naive t conds =
  let acc = ref [] in
  for row = t.nrows - 1 downto 0 do
    if List.for_all (fun cond -> check_condition t cond row) conds then
      acc := row :: !acc
  done;
  Cbitmap.Posting.of_sorted_array (Array.of_list !acc)

let answer_condition t cond =
  let ic = find_col t cond.column in
  Secidx.Static_index.query ic.index ~lo:cond.lo ~hi:cond.hi

let query t conds =
  match conds with
  | [] -> Cbitmap.Posting.of_sorted_array (Array.init t.nrows Fun.id)
  | _ ->
      let answers = List.map (answer_condition t) conds in
      (* Intersect smallest-first to keep intermediate results small. *)
      let postings =
        List.sort
          (fun a b -> compare (Cbitmap.Posting.cardinal a) (Cbitmap.Posting.cardinal b))
          (List.map (Indexing.Answer.to_posting ~n:t.nrows) answers)
      in
      (match postings with
      | [] -> Cbitmap.Posting.empty
      | first :: rest -> List.fold_left Cbitmap.Posting.inter first rest)

let query_approx t ~epsilon conds =
  match conds with
  | [] -> (Cbitmap.Posting.of_sorted_array (Array.init t.nrows Fun.id), 0)
  | _ ->
      let answers =
        List.map
          (fun cond ->
            let ic = find_col t cond.column in
            match ic.approx with
            | Some a -> Secidx.Approx_index.query a ~epsilon ~lo:cond.lo ~hi:cond.hi
            | None -> invalid_arg "Table.query_approx: built without approx")
          conds
      in
      (* Candidates from the first answer's preimage, filtered by
         hashed membership in the others; a row surviving all d
         approximate answers is a false positive with probability at
         most epsilon^d. *)
      (match answers with
      | [] -> (Cbitmap.Posting.empty, 0)
      | first :: rest ->
          let candidates =
            Cbitmap.Posting.fold
              (fun acc row ->
                if List.for_all (fun a -> Secidx.Approx_index.mem a row) rest
                then row :: acc
                else acc)
              []
              (Secidx.Approx_index.candidates first ~n:t.nrows)
          in
          let checked = List.length candidates in
          let verified =
            List.filter
              (fun row ->
                List.for_all (fun cond -> check_condition t cond row) conds)
              candidates
          in
          (Cbitmap.Posting.of_list verified, checked))

let query_at_least t ~k conds =
  if k <= 0 then invalid_arg "Table.query_at_least";
  let answers =
    List.map
      (fun cond -> Indexing.Answer.to_posting ~n:t.nrows (answer_condition t cond))
      conds
  in
  let hits = Array.make t.nrows 0 in
  List.iter
    (fun p -> Cbitmap.Posting.iter (fun row -> hits.(row) <- hits.(row) + 1) p)
    answers;
  let acc = ref [] in
  for row = t.nrows - 1 downto 0 do
    if hits.(row) >= k then acc := row :: !acc
  done;
  Cbitmap.Posting.of_sorted_array (Array.of_list !acc)

let size_bits t =
  Array.fold_left
    (fun acc ic ->
      acc
      + Secidx.Static_index.size_bits ic.index
      + match ic.approx with
        | Some a -> Secidx.Approx_index.hashed_bits a
        | None -> 0)
    0 t.cols

let query_at_least_approx t ~epsilon ~k conds =
  if k <= 0 then invalid_arg "Table.query_at_least_approx";
  let answers =
    List.map
      (fun cond ->
        let ic = find_col t cond.column in
        match ic.approx with
        | Some a ->
            (cond, Secidx.Approx_index.query a ~epsilon ~lo:cond.lo ~hi:cond.hi)
        | None -> invalid_arg "Table.query_at_least_approx: built without approx")
      conds
  in
  (* Approximate hit counting: a row that truly satisfies >= k
     conditions also approximately satisfies them (no false
     negatives), so thresholding the approximate counts keeps every
     true answer. *)
  let hits = Array.make t.nrows 0 in
  List.iter
    (fun (_, a) ->
      Cbitmap.Posting.iter
        (fun row -> hits.(row) <- hits.(row) + 1)
        (Secidx.Approx_index.candidates a ~n:t.nrows))
    answers;
  let candidates = ref [] in
  for row = t.nrows - 1 downto 0 do
    if hits.(row) >= k then candidates := row :: !candidates
  done;
  let checked = List.length !candidates in
  let verified =
    List.filter
      (fun row ->
        let sat =
          List.length
            (List.filter (fun (cond, _) -> check_condition t cond row) answers)
        in
        sat >= k)
      !candidates
  in
  (Cbitmap.Posting.of_list verified, checked)
