lib/ridint/table.ml: Array Cbitmap Fun Indexing Iosim List Secidx
