lib/ridint/table.mli: Cbitmap Iosim
