(** A column table with one secondary index per attribute — the RID
    intersection application that motivates the paper (§1):
    conjunctive multi-attribute range queries are answered by
    intersecting the RID sets returned by the per-attribute
    one-dimensional indexes, exactly the OLAP pattern ("married men of
    age 33") the introduction describes. *)

type column = { name : string; sigma : int; values : int array }

type t

(** Number of rows. *)
val rows : t -> int

val columns : t -> column array

(** Build one static secondary index (Theorem 2) per column, all on
    the given device. *)
val create : ?c:int -> Iosim.Device.t -> column list -> t

(** Also build approximate indexes (Theorem 3) for every column. *)
val create_approx :
  ?seed:int -> ?c:int -> Iosim.Device.t -> column list -> t

(** A conjunctive condition: per-column inclusive value range. *)
type condition = { column : string; lo : int; hi : int }

(** Scan-based reference answer. *)
val naive : t -> condition list -> Cbitmap.Posting.t

(** Exact conjunctive query by RID intersection: each condition is
    answered by its column's index, then the RID sets are intersected
    smallest-first. *)
val query : t -> condition list -> Cbitmap.Posting.t

(** Approximate conjunctive query (§3): each condition is answered
    approximately with false-positive parameter [epsilon]; candidates
    are intersected via hashed membership, then verified against the
    stored columns ("false positives can be filtered away when
    accessing the associated data").  Returns the verified rows and
    the number of candidate rows that had to be checked. *)
val query_approx :
  t -> epsilon:float -> condition list -> Cbitmap.Posting.t * int

(** Partial-match flavour (§1): rows matching at least [k] of the
    conditions. *)
val query_at_least : t -> k:int -> condition list -> Cbitmap.Posting.t

val size_bits : t -> int
val device : t -> Iosim.Device.t

(** Approximate partial match (§1 + §3): rows matching at least [k]
    of the conditions, computed from approximate per-condition answers
    and verified against the stored columns.  Returns the verified
    rows and the number of candidates checked. *)
val query_at_least_approx :
  t -> epsilon:float -> k:int -> condition list -> Cbitmap.Posting.t * int
