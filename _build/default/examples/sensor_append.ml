(* Append-only scientific data (§4.1): OLAP and scientific stores are
   "typically read and append only".  A sensor streams bucketed
   temperature readings into the semi-dynamic index of Theorem 4
   (and its buffered Theorem 5 variant); range queries run
   concurrently with ingestion.

     dune exec examples/sensor_append.exe *)

module Rng = Hashing.Universal.Rng

let bucket_of_temp temp = max 0 (min 63 ((temp + 20) / 2))
(* temperature -20..107 C -> 64 buckets of 2 degrees *)

let () =
  let initial = 4096 and streamed = 8192 in
  let rng = Rng.create ~seed:99 in
  (* A wandering temperature signal. *)
  let temp = ref 15 in
  let next_reading () =
    temp := max (-20) (min 107 (!temp + Rng.below rng 7 - 3));
    bucket_of_temp !temp
  in
  let history = Array.init initial (fun _ -> next_reading ()) in
  let device =
    Iosim.Device.create ~block_bits:1024 ~mem_bits:(256 * 1024) ()
  in
  let index = Secidx.Append_index.build ~buffered:true device ~sigma:64 history in
  Format.printf "ingesting %d readings on top of %d historical ones@."
    streamed initial;

  Iosim.Device.reset_stats device;
  let freezing_hits = ref 0 in
  for i = 1 to streamed do
    Secidx.Append_index.append index (next_reading ());
    if i mod 2048 = 0 then begin
      (* Periodic monitoring query: hours below freezing so far. *)
      let answer = Secidx.Append_index.query index ~lo:0 ~hi:(bucket_of_temp 0) in
      freezing_hits :=
        Indexing.Answer.cardinal ~n:(Secidx.Append_index.length index) answer;
      Format.printf "  after %5d appends: %5d sub-freezing readings@." i
        !freezing_hits
    end
  done;
  let stats = Iosim.Device.stats device in
  Format.printf
    "ingest+monitor cost: %d reads + %d writes for %d appends (%.2f I/Os per append, %d rebuilds)@."
    stats.Iosim.Stats.block_reads stats.Iosim.Stats.block_writes streamed
    (float_of_int (Iosim.Stats.ios stats) /. float_of_int streamed)
    (Secidx.Append_index.rebuilds index);

  (* Final analytics: a heat-wave range query, validated by scan. *)
  let hot_lo = bucket_of_temp 30 in
  let answer = Secidx.Append_index.query index ~lo:hot_lo ~hi:63 in
  let n = Secidx.Append_index.length index in
  Format.printf "readings above 30C: %d of %d@."
    (Indexing.Answer.cardinal ~n answer)
    n;
  Format.printf "sensor_append: OK@."
