(* Quickstart: build the paper's optimal secondary index (Theorem 2)
   over a small attribute column, run range queries, and look at the
   I/O counters of the simulated device.

     dune exec examples/quickstart.exe *)

let () =
  (* A column of 40 values over the alphabet {0..7}. *)
  let column =
    [|
      3; 1; 4; 1; 5; 2; 6; 5; 3; 5; 0; 7; 1; 6; 2; 3; 5; 0; 2; 7;
      1; 3; 4; 4; 6; 2; 0; 5; 7; 1; 2; 3; 6; 0; 4; 5; 2; 1; 7; 3;
    |]
  in
  let sigma = 8 in

  (* The I/O model: blocks of 256 bits, 16 KiB of internal memory. *)
  let device =
    Iosim.Device.create ~block_bits:256 ~mem_bits:(16 * 1024 * 8) ()
  in

  let index = Secidx.Static_index.build device ~sigma column in
  Format.printf "Built index over %d values (alphabet %d): %d bits on disk@."
    (Array.length column) sigma
    (Secidx.Static_index.size_bits index);

  let run lo hi =
    Iosim.Device.clear_pool device;
    Iosim.Device.reset_stats device;
    let answer = Secidx.Static_index.query index ~lo ~hi in
    let positions =
      Indexing.Answer.to_posting ~n:(Array.length column) answer
    in
    let stats = Iosim.Device.stats device in
    Format.printf "query [%d..%d]: %d rows %s (%d block reads, %d bits)@."
      lo hi
      (Cbitmap.Posting.cardinal positions)
      (Format.asprintf "%a" Cbitmap.Posting.pp positions)
      stats.Iosim.Stats.block_reads stats.Iosim.Stats.bits_read;
    (* Sanity: compare against a scan. *)
    let expected =
      Workload.Queries.naive_answer
        { Workload.Gen.sigma; data = column }
        { Workload.Queries.lo; hi }
    in
    assert (Cbitmap.Posting.equal positions expected)
  in
  run 2 4;
  run 0 0;
  run 5 7;
  (* A wide range triggers the complement trick: the index returns the
     (smaller) complement set instead of the answer itself. *)
  Iosim.Device.reset_stats device;
  (match Secidx.Static_index.query index ~lo:0 ~hi:6 with
  | Indexing.Answer.Complement p ->
      Format.printf
        "query [0..6] returned as complement of %d positions (answer has %d)@."
        (Cbitmap.Posting.cardinal p)
        (Array.length column - Cbitmap.Posting.cardinal p)
  | Indexing.Answer.Direct _ -> Format.printf "query [0..6] returned directly@.");
  Format.printf "quickstart: OK@."
