(* The unified view of §1.3: B-trees and uncompressed bitmap indexes
   are the two extremes of secondary indexing; binning and
   multi-resolution bitmaps trade space against query time; the
   paper's structure achieves both optima at once.  This example
   builds every index in the repository over the same skewed column
   and prints a space / query-I/O comparison.

     dune exec examples/index_zoo.exe *)

let () =
  let n = 32768 and sigma = 256 in
  let g = Workload.Gen.zipf ~seed:11 ~n ~sigma ~theta:1.1 () in
  let data = g.Workload.Gen.data in
  let nh0 = Cbitmap.Entropy.nh0_bits ~sigma data in
  Format.printf
    "column: n=%d sigma=%d H0=%.2f bits/symbol (entropy bound %.0f KiB)@.@."
    n sigma (Workload.Gen.h0 g) (nh0 /. 8192.0);

  let builders =
    [
      (fun dev -> Baselines.Btree.instance dev ~sigma data);
      (fun dev -> Baselines.Bitmap_index.instance dev ~sigma data);
      (fun dev -> Baselines.Range_encoded.instance dev ~sigma data);
      (fun dev -> Baselines.Cbitmap_index.instance dev ~sigma data);
      (fun dev -> Baselines.Binned_index.instance dev ~sigma ~w:16 data);
      (fun dev -> Baselines.Multires_index.instance dev ~sigma ~w:4 data);
      (fun dev -> Secidx.Alphabet_tree.instance dev ~sigma data);
      (fun dev -> Secidx.Static_index.instance dev ~sigma data);
    ]
  in
  (* Three query shapes: narrow (2 chars), medium (32), wide (192). *)
  let ranges = [ (10, 11); (64, 95); (32, 223) ] in
  Format.printf "%-20s %12s %10s %10s %10s@." "index" "space(KiB)" "narrow"
    "medium" "wide";
  Format.printf "%-20s %12s %10s %10s %10s@." "" "" "(I/Os)" "(I/Os)" "(I/Os)";
  List.iter
    (fun build ->
      let dev =
        Iosim.Device.create ~block_bits:1024 ~mem_bits:(1024 * 1024) ()
      in
      let inst = build dev in
      let ios =
        List.map
          (fun (lo, hi) ->
            let _, stats = Indexing.Instance.query_cold inst ~lo ~hi in
            Iosim.Stats.ios stats)
          ranges
      in
      match ios with
      | [ narrow; medium; wide ] ->
          Format.printf "%-20s %12.1f %10d %10d %10d@."
            inst.Indexing.Instance.name
            (float_of_int inst.Indexing.Instance.size_bits /. 8192.0)
            narrow medium wide
      | _ -> assert false)
    builders;
  Format.printf
    "@.(The paper's index should sit near the compressed-bitmap space while@.";
  Format.printf
    " matching or beating every bitmap variant on wide-range query I/O.)@."
