(* The paper's motivating example (§1): "in a database of people we
   may want to find all married men of age 33", answered by RID
   intersection of three one-dimensional secondary indexes — exactly,
   and approximately with Bloom-filter-style answers (§3).

     dune exec examples/olap_people.exe *)

module Rng = Hashing.Universal.Rng

let () =
  let rows = 65536 in
  let rng = Rng.create ~seed:2026 in
  (* age 0..99 (skewed towards working age), sex 0/1, marital status
     0=single 1=married 2=divorced 3=widowed, income decile 0..9. *)
  let age =
    Array.init rows (fun _ -> 18 + ((Rng.below rng 50 + Rng.below rng 50) / 2))
  in
  let sex = Array.init rows (fun _ -> Rng.below rng 2) in
  let status = Array.init rows (fun _ -> Rng.below rng 4) in
  let income = Array.init rows (fun _ -> Rng.below rng 10) in
  let columns =
    [
      { Ridint.Table.name = "age"; sigma = 100; values = age };
      { Ridint.Table.name = "sex"; sigma = 2; values = sex };
      { Ridint.Table.name = "status"; sigma = 4; values = status };
      { Ridint.Table.name = "income"; sigma = 10; values = income };
    ]
  in
  let device =
    Iosim.Device.create ~block_bits:1024 ~mem_bits:(1024 * 1024) ()
  in
  let table = Ridint.Table.create_approx ~seed:7 device columns in
  Format.printf "people table: %d rows, indexes use %d KiB@." rows
    (Ridint.Table.size_bits table / 8192);

  let married_men_33 =
    [
      { Ridint.Table.column = "age"; lo = 33; hi = 33 };
      { Ridint.Table.column = "sex"; lo = 1; hi = 1 };
      { Ridint.Table.column = "status"; lo = 1; hi = 1 };
    ]
  in

  (* Exact RID intersection. *)
  Iosim.Device.clear_pool device;
  Iosim.Device.reset_stats device;
  let exact = Ridint.Table.query table married_men_33 in
  let exact_stats = Iosim.Stats.snapshot (Iosim.Device.stats device) in
  Format.printf "exact:  %d married men of age 33  (%d block reads, %d bits)@."
    (Cbitmap.Posting.cardinal exact)
    exact_stats.Iosim.Stats.block_reads exact_stats.Iosim.Stats.bits_read;

  (* Approximate intersection with verification (§3). *)
  Iosim.Device.clear_pool device;
  Iosim.Device.reset_stats device;
  let approx, checked =
    Ridint.Table.query_approx table ~epsilon:0.05 married_men_33
  in
  let approx_stats = Iosim.Stats.snapshot (Iosim.Device.stats device) in
  Format.printf
    "approx: %d rows after verifying %d candidates (%d block reads, %d bits)@."
    (Cbitmap.Posting.cardinal approx)
    checked approx_stats.Iosim.Stats.block_reads
    approx_stats.Iosim.Stats.bits_read;
  assert (Cbitmap.Posting.equal exact approx);

  (* A wider conjunctive query plus a partial-match query. *)
  let prosperous_middle_age =
    [
      { Ridint.Table.column = "age"; lo = 40; hi = 55 };
      { Ridint.Table.column = "income"; lo = 8; hi = 9 };
      { Ridint.Table.column = "status"; lo = 1; hi = 1 };
    ]
  in
  let all = Ridint.Table.query table prosperous_middle_age in
  let two_of_three =
    Ridint.Table.query_at_least table ~k:2 prosperous_middle_age
  in
  Format.printf
    "married 40-55 in top income: %d rows; matching >= 2 of 3 conditions: %d rows@."
    (Cbitmap.Posting.cardinal all)
    (Cbitmap.Posting.cardinal two_of_three);
  assert (Cbitmap.Posting.subset all two_of_three);
  Format.printf "olap_people: OK@."
