(* A fully mutable indexed store (§4.3 + §4): a column under random
   updates and deletions, served by the fully dynamic index of
   Theorem 7, with the deletion position-translation map providing
   "natural" row numbers that skip deleted rows.

     dune exec examples/mutable_store.exe *)

module Rng = Hashing.Universal.Rng

let () =
  let n = 8192 and sigma = 32 in
  let rng = Rng.create ~seed:4242 in
  let initial = Array.init n (fun _ -> Rng.below rng sigma) in
  let device =
    Iosim.Device.create ~block_bits:1024 ~mem_bits:(512 * 1024) ()
  in
  let index = Secidx.Dynamic_index.build device ~sigma initial in
  let dmap = Secidx.Delete_map.create device ~capacity:n in
  Format.printf "store: %d rows over alphabet %d (%d KiB on device)@." n sigma
    (Secidx.Dynamic_index.size_bits index / 8192);

  (* Mixed workload: 2000 value changes, 1500 deletions. *)
  Iosim.Device.reset_stats device;
  for _ = 1 to 2000 do
    Secidx.Dynamic_index.change index ~pos:(Rng.below rng n) (Rng.below rng sigma)
  done;
  for _ = 1 to 1500 do
    let pos = Rng.below rng n in
    if not (Secidx.Delete_map.is_deleted dmap pos) then begin
      Secidx.Dynamic_index.delete index ~pos;
      Secidx.Delete_map.delete dmap pos
    end
  done;
  let stats = Iosim.Device.stats device in
  Format.printf "applied 3500 updates: %.2f I/Os each (%d rebuilds)@."
    (float_of_int (Iosim.Stats.ios stats) /. 3500.0)
    (Secidx.Dynamic_index.rebuilds index);
  Format.printf "live rows: %d of %d@."
    (Secidx.Delete_map.live_count dmap)
    n;

  (* Query through the index, then translate internal positions to the
     user-visible numbering that skips deleted rows. *)
  Iosim.Device.clear_pool device;
  Iosim.Device.reset_stats device;
  let answer = Secidx.Dynamic_index.query index ~lo:10 ~hi:12 in
  let internal =
    Indexing.Answer.to_posting ~n:(Secidx.Dynamic_index.length index) answer
  in
  let external_rows =
    Cbitmap.Posting.fold
      (fun acc pos ->
        match Secidx.Delete_map.to_external dmap pos with
        | Some row -> row :: acc
        | None -> acc (* deleted rows never appear: the index uses ∞ *))
      [] internal
  in
  let qstats = Iosim.Device.stats device in
  Format.printf
    "query values [10..12]: %d live rows (%d block reads); first external row ids: %s@."
    (List.length external_rows)
    qstats.Iosim.Stats.block_reads
    (String.concat ","
       (List.map string_of_int
          (List.filteri (fun i _ -> i < 8) (List.rev external_rows))));

  (* Consistency: every internal hit is live and within range. *)
  Cbitmap.Posting.iter
    (fun pos ->
      let c = Secidx.Dynamic_index.char_at index pos in
      assert (c >= 10 && c <= 12);
      assert (not (Secidx.Delete_map.is_deleted dmap pos)))
    internal;
  Format.printf "mutable_store: OK@."
