examples/olap_people.ml: Array Cbitmap Format Hashing Iosim Ridint
