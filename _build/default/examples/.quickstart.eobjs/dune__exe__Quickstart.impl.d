examples/quickstart.ml: Array Cbitmap Format Indexing Iosim Secidx Workload
