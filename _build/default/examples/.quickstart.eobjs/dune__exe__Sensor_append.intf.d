examples/sensor_append.mli:
