examples/index_zoo.mli:
