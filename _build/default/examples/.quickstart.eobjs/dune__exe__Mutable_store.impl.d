examples/mutable_store.ml: Array Cbitmap Format Hashing Indexing Iosim List Secidx String
