examples/olap_people.mli:
