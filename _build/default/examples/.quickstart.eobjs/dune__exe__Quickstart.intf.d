examples/quickstart.mli:
