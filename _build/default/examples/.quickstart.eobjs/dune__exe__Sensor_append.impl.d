examples/sensor_append.ml: Array Format Hashing Indexing Iosim Secidx
