examples/index_zoo.ml: Baselines Cbitmap Format Indexing Iosim List Secidx Workload
