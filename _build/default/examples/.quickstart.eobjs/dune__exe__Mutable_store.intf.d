examples/mutable_store.mli:
