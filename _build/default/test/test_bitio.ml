(* Unit and property tests for the bit-level substrate. *)

let qcheck = QCheck_alcotest.to_alcotest

let test_write_read_bits () =
  let buf = Bitio.Bitbuf.create () in
  Bitio.Bitbuf.write_bits buf ~width:5 0b10110;
  Bitio.Bitbuf.write_bits buf ~width:3 0b011;
  Alcotest.(check int) "length" 8 (Bitio.Bitbuf.length buf);
  Alcotest.(check int) "first 5" 0b10110
    (Bitio.Bitbuf.read_bits buf ~pos:0 ~width:5);
  Alcotest.(check int) "next 3" 0b011
    (Bitio.Bitbuf.read_bits buf ~pos:5 ~width:3);
  Alcotest.(check int) "straddle" 0b1100
    (Bitio.Bitbuf.read_bits buf ~pos:2 ~width:4)

let test_write_bit_order () =
  let buf = Bitio.Bitbuf.create () in
  List.iter (Bitio.Bitbuf.write_bit buf) [ true; false; true; true ];
  Alcotest.(check bool) "bit 0" true (Bitio.Bitbuf.get_bit buf 0);
  Alcotest.(check bool) "bit 1" false (Bitio.Bitbuf.get_bit buf 1);
  Alcotest.(check int) "as int" 0b1011
    (Bitio.Bitbuf.read_bits buf ~pos:0 ~width:4)

let test_append_aligned () =
  let a = Bitio.Bitbuf.of_int ~width:16 0xbeef in
  let b = Bitio.Bitbuf.of_int ~width:8 0x42 in
  Bitio.Bitbuf.append a b;
  Alcotest.(check int) "len" 24 (Bitio.Bitbuf.length a);
  Alcotest.(check int) "tail" 0x42 (Bitio.Bitbuf.read_bits a ~pos:16 ~width:8)

let test_append_unaligned () =
  let a = Bitio.Bitbuf.of_int ~width:3 0b101 in
  let b = Bitio.Bitbuf.of_int ~width:7 0b1100110 in
  Bitio.Bitbuf.append a b;
  Alcotest.(check int) "len" 10 (Bitio.Bitbuf.length a);
  Alcotest.(check int) "all" 0b1011100110
    (Bitio.Bitbuf.read_bits a ~pos:0 ~width:10)

let test_to_bytes_padding () =
  let buf = Bitio.Bitbuf.of_int ~width:10 0b1111111111 in
  let bytes = Bitio.Bitbuf.to_bytes buf in
  Alcotest.(check int) "nbytes" 2 (Bytes.length bytes);
  Alcotest.(check int) "padded" 0xc0 (Char.code (Bytes.get bytes 1))

let test_blit_to_bytes () =
  let buf = Bitio.Bitbuf.of_int ~width:12 0xabc in
  let dst = Bytes.make 4 '\xff' in
  Bitio.Bitbuf.blit_to_bytes buf dst ~dst_bit:8;
  Alcotest.(check int) "untouched before" 0xff (Char.code (Bytes.get dst 0));
  Alcotest.(check int) "first byte" 0xab (Char.code (Bytes.get dst 1));
  (* Low nibble of byte 2 must keep its old bits. *)
  Alcotest.(check int) "merged byte" 0xcf (Char.code (Bytes.get dst 2));
  Alcotest.(check int) "untouched after" 0xff (Char.code (Bytes.get dst 3))

let test_reader_of_bitbuf () =
  let buf = Bitio.Bitbuf.of_int ~width:20 0xabcde in
  let r = Bitio.Reader.of_bitbuf buf in
  Alcotest.(check int) "8" 0xab (r.Bitio.Reader.read_bits 8);
  Alcotest.(check int) "pos" 8 (r.Bitio.Reader.bit_pos ());
  r.Bitio.Reader.seek 12;
  Alcotest.(check int) "after seek" 0xde (r.Bitio.Reader.read_bits 8)

let test_reader_of_bytes () =
  let r = Bitio.Reader.of_bytes (Bytes.of_string "\xf0\x0f") in
  Alcotest.(check int) "first" 0xf0 (r.Bitio.Reader.read_bits 8);
  Alcotest.(check int) "second" 0x0f (r.Bitio.Reader.read_bits 8)

let test_gamma_known () =
  (* Known gamma codewords: 1 -> "1", 2 -> "010", 3 -> "011",
     4 -> "00100". *)
  let enc v =
    let buf = Bitio.Bitbuf.create () in
    Bitio.Codes.encode_gamma buf v;
    Format.asprintf "%a" Bitio.Bitbuf.pp buf
  in
  Alcotest.(check string) "gamma 1" "1" (enc 1);
  Alcotest.(check string) "gamma 2" "010" (enc 2);
  Alcotest.(check string) "gamma 3" "011" (enc 3);
  Alcotest.(check string) "gamma 4" "00100" (enc 4)

let test_unary_roundtrip () =
  let buf = Bitio.Bitbuf.create () in
  List.iter (Bitio.Codes.encode_unary buf) [ 0; 3; 1; 7 ];
  let r = Bitio.Reader.of_bitbuf buf in
  List.iter
    (fun v -> Alcotest.(check int) "unary" v (Bitio.Codes.decode_unary r))
    [ 0; 3; 1; 7 ]

let test_log2 () =
  Alcotest.(check int) "floor 1" 0 (Bitio.Codes.floor_log2 1);
  Alcotest.(check int) "floor 7" 2 (Bitio.Codes.floor_log2 7);
  Alcotest.(check int) "floor 8" 3 (Bitio.Codes.floor_log2 8);
  Alcotest.(check int) "ceil 1" 0 (Bitio.Codes.ceil_log2 1);
  Alcotest.(check int) "ceil 7" 3 (Bitio.Codes.ceil_log2 7);
  Alcotest.(check int) "ceil 8" 3 (Bitio.Codes.ceil_log2 8);
  Alcotest.(check int) "ceil 9" 4 (Bitio.Codes.ceil_log2 9)

(* Property: every code round-trips a sequence of values and reports
   its exact encoded size. *)
let roundtrip_prop name gen encode decode size =
  QCheck.Test.make ~count:200 ~name (QCheck.list_of_size (QCheck.Gen.return 20) gen)
    (fun vs ->
      let buf = Bitio.Bitbuf.create () in
      let expected_bits = List.fold_left (fun acc v -> acc + size v) 0 vs in
      List.iter (encode buf) vs;
      if Bitio.Bitbuf.length buf <> expected_bits then false
      else begin
        let r = Bitio.Reader.of_bitbuf buf in
        List.for_all (fun v -> decode r = v) vs
      end)

let pos_gen = QCheck.int_range 1 (1 lsl 50)
let small_pos_gen = QCheck.int_range 1 1_000_000
let nat_gen = QCheck.int_range 0 100_000

let prop_gamma =
  roundtrip_prop "gamma roundtrip+size"
    (QCheck.oneof [ small_pos_gen; pos_gen ])
    Bitio.Codes.encode_gamma Bitio.Codes.decode_gamma Bitio.Codes.gamma_size

let prop_delta =
  roundtrip_prop "delta roundtrip+size"
    (QCheck.oneof [ small_pos_gen; pos_gen ])
    Bitio.Codes.encode_delta Bitio.Codes.decode_delta Bitio.Codes.delta_size

let prop_rice =
  roundtrip_prop "rice k=4 roundtrip+size" (QCheck.int_range 0 4096)
    (fun buf v -> Bitio.Codes.encode_rice buf ~k:4 v)
    (Bitio.Codes.decode_rice ~k:4)
    (Bitio.Codes.rice_size ~k:4)

let prop_fixed =
  roundtrip_prop "fixed w=17 roundtrip" (QCheck.int_range 0 ((1 lsl 17) - 1))
    (fun buf v -> Bitio.Codes.encode_fixed buf ~width:17 v)
    (Bitio.Codes.decode_fixed ~width:17)
    (Bitio.Codes.fixed_size ~width:17)

let prop_mixed_stream =
  QCheck.Test.make ~count:100 ~name:"mixed code stream roundtrip"
    QCheck.(list_of_size (Gen.return 30) (pair (int_range 0 3) small_pos_gen))
    (fun items ->
      let buf = Bitio.Bitbuf.create () in
      List.iter
        (fun (tag, v) ->
          match tag with
          | 0 -> Bitio.Codes.encode_gamma buf v
          | 1 -> Bitio.Codes.encode_delta buf v
          | 2 -> Bitio.Codes.encode_rice buf ~k:6 v
          | _ -> Bitio.Codes.encode_fixed buf ~width:21 (v land 0x1fffff))
        items;
      let r = Bitio.Reader.of_bitbuf buf in
      List.for_all
        (fun (tag, v) ->
          match tag with
          | 0 -> Bitio.Codes.decode_gamma r = v
          | 1 -> Bitio.Codes.decode_delta r = v
          | 2 -> Bitio.Codes.decode_rice r ~k:6 = v
          | _ -> Bitio.Codes.decode_fixed r ~width:21 = v land 0x1fffff)
        items)

let prop_write_read_bits =
  QCheck.Test.make ~count:200 ~name:"bitbuf write_bits/read_bits agree"
    QCheck.(list_of_size (Gen.return 15) (pair (int_range 1 30) nat_gen))
    (fun items ->
      let items = List.map (fun (w, v) -> (w, v land ((1 lsl w) - 1))) items in
      let buf = Bitio.Bitbuf.create () in
      List.iter (fun (w, v) -> Bitio.Bitbuf.write_bits buf ~width:w v) items;
      let pos = ref 0 in
      List.for_all
        (fun (w, v) ->
          let got = Bitio.Bitbuf.read_bits buf ~pos:!pos ~width:w in
          pos := !pos + w;
          got = v)
        items)

let prop_append_equiv =
  QCheck.Test.make ~count:200 ~name:"append equals bit-by-bit copy"
    QCheck.(pair (list (int_range 0 1)) (list (int_range 0 1)))
    (fun (xs, ys) ->
      let mk bits =
        let b = Bitio.Bitbuf.create () in
        List.iter (fun v -> Bitio.Bitbuf.write_bit b (v = 1)) bits;
        b
      in
      let a = mk xs and b = mk ys in
      Bitio.Bitbuf.append a b;
      let expected = mk (xs @ ys) in
      Bitio.Bitbuf.equal a expected)

let suite =
  [
    Alcotest.test_case "write/read bits" `Quick test_write_read_bits;
    Alcotest.test_case "bit order msb-first" `Quick test_write_bit_order;
    Alcotest.test_case "append aligned" `Quick test_append_aligned;
    Alcotest.test_case "append unaligned" `Quick test_append_unaligned;
    Alcotest.test_case "to_bytes padding" `Quick test_to_bytes_padding;
    Alcotest.test_case "blit_to_bytes" `Quick test_blit_to_bytes;
    Alcotest.test_case "reader over bitbuf" `Quick test_reader_of_bitbuf;
    Alcotest.test_case "reader over bytes" `Quick test_reader_of_bytes;
    Alcotest.test_case "gamma known codewords" `Quick test_gamma_known;
    Alcotest.test_case "unary roundtrip" `Quick test_unary_roundtrip;
    Alcotest.test_case "log2 helpers" `Quick test_log2;
    qcheck prop_gamma;
    qcheck prop_delta;
    qcheck prop_rice;
    qcheck prop_fixed;
    qcheck prop_mixed_stream;
    qcheck prop_write_read_bits;
    qcheck prop_append_equiv;
  ]
