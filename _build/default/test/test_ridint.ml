(* Tests for the RID-intersection application (§1, §3). *)

let qcheck = QCheck_alcotest.to_alcotest

let device ?(block_bits = 256) ?(mem_blocks = 256) () =
  Iosim.Device.create ~block_bits ~mem_bits:(mem_blocks * block_bits) ()

let mk_columns ~seed ~rows =
  let rng = Hashing.Universal.Rng.create ~seed in
  [
    {
      Ridint.Table.name = "age";
      sigma = 64;
      values = Array.init rows (fun _ -> Hashing.Universal.Rng.below rng 64);
    };
    {
      Ridint.Table.name = "sex";
      sigma = 2;
      values = Array.init rows (fun _ -> Hashing.Universal.Rng.below rng 2);
    };
    {
      Ridint.Table.name = "status";
      sigma = 4;
      values = Array.init rows (fun _ -> Hashing.Universal.Rng.below rng 4);
    };
  ]

let conds_gen =
  QCheck.make
    ~print:(fun (seed, rows, a_lo, a_hi) ->
      Printf.sprintf "seed=%d rows=%d age=[%d..%d]" seed rows a_lo a_hi)
    QCheck.Gen.(
      int_range 0 1000 >>= fun seed ->
      int_range 10 400 >>= fun rows ->
      int_range 0 63 >>= fun a ->
      int_range 0 63 >>= fun b ->
      return (seed, rows, min a b, max a b))

let conditions a_lo a_hi =
  [
    { Ridint.Table.column = "age"; lo = a_lo; hi = a_hi };
    { Ridint.Table.column = "sex"; lo = 1; hi = 1 };
    { Ridint.Table.column = "status"; lo = 2; hi = 3 };
  ]

let prop_query_matches_naive =
  QCheck.Test.make ~count:60 ~name:"conjunctive query = naive scan" conds_gen
    (fun (seed, rows, a_lo, a_hi) ->
      let t = Ridint.Table.create (device ()) (mk_columns ~seed ~rows) in
      let conds = conditions a_lo a_hi in
      Cbitmap.Posting.equal
        (Ridint.Table.query t conds)
        (Ridint.Table.naive t conds))

let prop_approx_verified_equals_naive =
  QCheck.Test.make ~count:30
    ~name:"approximate query verifies to the exact answer" conds_gen
    (fun (seed, rows, a_lo, a_hi) ->
      let t =
        Ridint.Table.create_approx ~seed:(seed + 1) (device ())
          (mk_columns ~seed ~rows)
      in
      let conds = conditions a_lo a_hi in
      let verified, checked = Ridint.Table.query_approx t ~epsilon:0.1 conds in
      checked >= Cbitmap.Posting.cardinal verified
      && Cbitmap.Posting.equal verified (Ridint.Table.naive t conds))

let prop_at_least =
  QCheck.Test.make ~count:40 ~name:"at-least-k matches naive counting"
    conds_gen
    (fun (seed, rows, a_lo, a_hi) ->
      let t = Ridint.Table.create (device ()) (mk_columns ~seed ~rows) in
      let conds = conditions a_lo a_hi in
      let got = Ridint.Table.query_at_least t ~k:2 conds in
      (* Reference: count satisfied conditions per row. *)
      let expected = ref [] in
      for row = rows - 1 downto 0 do
        let sat =
          List.length
            (List.filter
               (fun (c : Ridint.Table.condition) ->
                 let col =
                   List.find
                     (fun (col : Ridint.Table.column) -> col.name = c.column)
                     (Array.to_list (Ridint.Table.columns t))
                 in
                 col.values.(row) >= c.lo && col.values.(row) <= c.hi)
               conds)
        in
        if sat >= 2 then expected := row :: !expected
      done;
      Cbitmap.Posting.equal got (Cbitmap.Posting.of_list !expected))

let test_empty_conditions () =
  let t = Ridint.Table.create (device ()) (mk_columns ~seed:3 ~rows:20) in
  Alcotest.(check int) "all rows" 20
    (Cbitmap.Posting.cardinal (Ridint.Table.query t []))

let test_unknown_column () =
  let t = Ridint.Table.create (device ()) (mk_columns ~seed:4 ~rows:10) in
  Alcotest.check_raises "unknown column"
    (Invalid_argument "Table: unknown column height") (fun () ->
      ignore
        (Ridint.Table.query t
           [ { Ridint.Table.column = "height"; lo = 0; hi = 1 } ]))

let test_approx_reduces_io () =
  (* The point of §3: intersecting approximate answers reads fewer
     bits than intersecting exact ones when selectivity is low.
     n = 2^16 keeps moderate z/epsilon on the hashed path. *)
  let rows = 65536 in
  let rng = Hashing.Universal.Rng.create ~seed:77 in
  let cols =
    [
      {
        Ridint.Table.name = "a";
        sigma = 4096;
        values = Array.init rows (fun _ -> Hashing.Universal.Rng.below rng 4096);
      };
      {
        Ridint.Table.name = "b";
        sigma = 4096;
        values = Array.init rows (fun _ -> Hashing.Universal.Rng.below rng 4096);
      };
    ]
  in
  let dev = device ~block_bits:1024 ~mem_blocks:1024 () in
  let t = Ridint.Table.create_approx ~seed:5 dev cols in
  let conds =
    [
      { Ridint.Table.column = "a"; lo = 100; hi = 100 };
      { Ridint.Table.column = "b"; lo = 200; hi = 200 };
    ]
  in
  Iosim.Device.clear_pool dev;
  Iosim.Device.reset_stats dev;
  let exact = Ridint.Table.query t conds in
  let exact_bits = (Iosim.Device.stats dev).Iosim.Stats.bits_read in
  Iosim.Device.clear_pool dev;
  Iosim.Device.reset_stats dev;
  let approx, _ = Ridint.Table.query_approx t ~epsilon:0.1 conds in
  let approx_bits = (Iosim.Device.stats dev).Iosim.Stats.bits_read in
  Alcotest.(check bool) "same answer" true (Cbitmap.Posting.equal exact approx);
  if not (approx_bits < exact_bits) then
    Alcotest.failf "approx read more: %d vs %d bits" approx_bits exact_bits

let suite =
  [
    qcheck prop_query_matches_naive;
    qcheck prop_approx_verified_equals_naive;
    qcheck prop_at_least;
    Alcotest.test_case "empty conditions" `Quick test_empty_conditions;
    Alcotest.test_case "unknown column" `Quick test_unknown_column;
    Alcotest.test_case "approximate intersection reads less" `Quick
      test_approx_reduces_io;
  ]

let prop_at_least_approx =
  QCheck.Test.make ~count:20 ~name:"approximate at-least-k verifies to exact"
    conds_gen
    (fun (seed, rows, a_lo, a_hi) ->
      let t =
        Ridint.Table.create_approx ~seed:(seed + 2) (device ())
          (mk_columns ~seed ~rows)
      in
      let conds = conditions a_lo a_hi in
      let exact = Ridint.Table.query_at_least t ~k:2 conds in
      let approx, checked =
        Ridint.Table.query_at_least_approx t ~epsilon:0.2 ~k:2 conds
      in
      checked >= Cbitmap.Posting.cardinal approx
      && Cbitmap.Posting.equal exact approx)

let suite =
  suite @ [ qcheck prop_at_least_approx ]
