(* Model-based and I/O-shape tests for the buffered compressed bitmap
   index of §4.2 (Theorem 6). *)

let qcheck = QCheck_alcotest.to_alcotest

let device ?(block_bits = 256) ?(mem_blocks = 64) () =
  Iosim.Device.create ~block_bits ~mem_bits:(mem_blocks * block_bits) ()

(* Reference model: an array of int sets. *)
module Model = struct
  module S = Set.Make (Int)

  type t = S.t array

  let create streams = Array.make streams S.empty

  let update (m : t) op ~stream ~pos =
    m.(stream) <-
      (match op with
      | Secidx.Buffered_bitmap.Add -> S.add pos m.(stream)
      | Secidx.Buffered_bitmap.Remove -> S.remove pos m.(stream))

  let range (m : t) ~lo ~hi =
    let acc = ref S.empty in
    for s = lo to hi do
      acc := S.union !acc m.(s)
    done;
    Cbitmap.Posting.of_list (S.elements !acc)
end

let ops_gen =
  QCheck.make
    ~print:(fun (streams, ops) ->
      Printf.sprintf "streams=%d ops=[%s]" streams
        (String.concat ";"
           (List.map
              (fun (add, s, p) ->
                Printf.sprintf "%s(%d,%d)" (if add then "+" else "-") s p)
              ops)))
    QCheck.Gen.(
      int_range 1 8 >>= fun streams ->
      list_size (int_range 0 120)
        (triple bool (int_range 0 (streams - 1)) (int_range 0 400))
      >>= fun ops -> return (streams, ops))

let initial_postings ~streams ~seed =
  let rng = Hashing.Universal.Rng.create ~seed in
  Array.init streams (fun _ ->
      let k = Hashing.Universal.Rng.below rng 30 in
      Cbitmap.Posting.of_list
        (List.init k (fun _ -> Hashing.Universal.Rng.below rng 400)))

let prop_model_point =
  QCheck.Test.make ~count:150 ~name:"buffered bitmap = reference model (point)"
    ops_gen
    (fun (streams, ops) ->
      let dev = device () in
      let init = initial_postings ~streams ~seed:streams in
      let t = Secidx.Buffered_bitmap.build ~c:2 ~pos_bits:16 dev init in
      let m = Model.create streams in
      Array.iteri
        (fun s p ->
          Cbitmap.Posting.iter
            (fun pos -> Model.update m Secidx.Buffered_bitmap.Add ~stream:s ~pos)
            p)
        init;
      List.for_all
        (fun (add, s, p) ->
          let op =
            if add then Secidx.Buffered_bitmap.Add
            else Secidx.Buffered_bitmap.Remove
          in
          Secidx.Buffered_bitmap.update t op ~stream:s ~pos:p;
          Model.update m op ~stream:s ~pos:p;
          (* Check a random stream after each op. *)
          let q = (s + 1) mod streams in
          Cbitmap.Posting.equal
            (Secidx.Buffered_bitmap.point_query t q)
            (Model.range m ~lo:q ~hi:q))
        ops)

let prop_model_range =
  QCheck.Test.make ~count:100 ~name:"buffered bitmap = reference model (range)"
    ops_gen
    (fun (streams, ops) ->
      let dev = device () in
      let t =
        Secidx.Buffered_bitmap.build ~c:3 ~pos_bits:16 dev
          (Array.make streams Cbitmap.Posting.empty)
      in
      let m = Model.create streams in
      List.iter
        (fun (add, s, p) ->
          let op =
            if add then Secidx.Buffered_bitmap.Add
            else Secidx.Buffered_bitmap.Remove
          in
          Secidx.Buffered_bitmap.update t op ~stream:s ~pos:p;
          Model.update m op ~stream:s ~pos:p)
        ops;
      let ok = ref true in
      for lo = 0 to streams - 1 do
        for hi = lo to streams - 1 do
          if
            not
              (Cbitmap.Posting.equal
                 (Secidx.Buffered_bitmap.range_query t ~lo ~hi)
                 (Model.range m ~lo ~hi))
          then ok := false
        done
      done;
      !ok)

let prop_flush_preserves =
  QCheck.Test.make ~count:100 ~name:"flush_all preserves contents" ops_gen
    (fun (streams, ops) ->
      let dev = device () in
      let t =
        Secidx.Buffered_bitmap.build ~c:2 ~pos_bits:16 dev
          (Array.make streams Cbitmap.Posting.empty)
      in
      List.iter
        (fun (add, s, p) ->
          let op =
            if add then Secidx.Buffered_bitmap.Add
            else Secidx.Buffered_bitmap.Remove
          in
          Secidx.Buffered_bitmap.update t op ~stream:s ~pos:p)
        ops;
      let before =
        List.init streams (fun s -> Secidx.Buffered_bitmap.point_query t s)
      in
      Secidx.Buffered_bitmap.flush_all t;
      let after =
        List.init streams (fun s -> Secidx.Buffered_bitmap.point_query t s)
      in
      List.for_all2 Cbitmap.Posting.equal before after)

let test_leaf_splits () =
  (* Push enough positions into one stream to force multiple leaf
     blocks. *)
  let dev = device ~block_bits:256 () in
  let t =
    Secidx.Buffered_bitmap.build ~c:4 ~pos_bits:20 dev
      (Array.make 4 Cbitmap.Posting.empty)
  in
  for p = 0 to 999 do
    Secidx.Buffered_bitmap.update t Secidx.Buffered_bitmap.Add ~stream:2
      ~pos:(p * 7)
  done;
  Secidx.Buffered_bitmap.flush_all t;
  Alcotest.(check bool) "split happened" true
    (Secidx.Buffered_bitmap.leaf_count t > 4);
  let p = Secidx.Buffered_bitmap.point_query t 2 in
  Alcotest.(check int) "all present" 1000 (Cbitmap.Posting.cardinal p);
  Alcotest.(check bool) "exact contents" true
    (Cbitmap.Posting.equal p
       (Cbitmap.Posting.of_sorted_array (Array.init 1000 (fun i -> i * 7))))

let test_update_amortized_cost () =
  (* Amortized update cost must be far below one I/O per update (the
     whole point of buffering): with B = 1024 and ~50-bit records,
     b' = 20 records fit a block, so a root flush of >= cap/degree
     records costs O(1) block writes. *)
  let dev = device ~block_bits:1024 ~mem_blocks:4 () in
  let t =
    Secidx.Buffered_bitmap.build ~c:4 ~pos_bits:30 dev
      (Array.init 64 (fun s ->
           Cbitmap.Posting.of_list (List.init 20 (fun i -> (s * 100) + i))))
  in
  Iosim.Device.reset_stats dev;
  let updates = 4000 in
  let rng = Hashing.Universal.Rng.create ~seed:5 in
  for _ = 1 to updates do
    Secidx.Buffered_bitmap.update t Secidx.Buffered_bitmap.Add
      ~stream:(Hashing.Universal.Rng.below rng 64)
      ~pos:(Hashing.Universal.Rng.below rng 1_000_000)
  done;
  let ios = Iosim.Stats.ios (Iosim.Device.stats dev) in
  let per_update = float_of_int ios /. float_of_int updates in
  if per_update > 2.0 then
    Alcotest.failf "amortized update cost too high: %.3f I/Os" per_update

let test_point_query_io_scales () =
  (* Query cost ~ T/B + lg n: a stream with 10x the positions should
     not cost 100x the I/Os. *)
  let dev = device ~block_bits:512 ~mem_blocks:256 () in
  let small = Cbitmap.Posting.of_list (List.init 20 (fun i -> i * 50)) in
  let large =
    Cbitmap.Posting.of_sorted_array (Array.init 2000 (fun i -> i * 3))
  in
  let t = Secidx.Buffered_bitmap.build ~c:4 dev [| small; large |] in
  Iosim.Device.clear_pool dev;
  Iosim.Device.reset_stats dev;
  ignore (Secidx.Buffered_bitmap.point_query t 0);
  let io_small = Iosim.Stats.ios (Iosim.Device.stats dev) in
  Iosim.Device.clear_pool dev;
  Iosim.Device.reset_stats dev;
  ignore (Secidx.Buffered_bitmap.point_query t 1);
  let io_large = Iosim.Stats.ios (Iosim.Device.stats dev) in
  Alcotest.(check bool) "large costs more" true (io_large > io_small);
  Alcotest.(check bool) "but not absurdly more" true
    (io_large < 50 * io_small)

let test_empty_streams () =
  let dev = device () in
  let t =
    Secidx.Buffered_bitmap.build dev (Array.make 5 Cbitmap.Posting.empty)
  in
  for s = 0 to 4 do
    Alcotest.(check int) "empty" 0
      (Cbitmap.Posting.cardinal (Secidx.Buffered_bitmap.point_query t s))
  done;
  Alcotest.(check int) "one leaf per stream" 5
    (Secidx.Buffered_bitmap.leaf_count t)

let test_add_remove_same_position () =
  let dev = device () in
  let t =
    Secidx.Buffered_bitmap.build ~c:2 dev (Array.make 2 Cbitmap.Posting.empty)
  in
  Secidx.Buffered_bitmap.update t Secidx.Buffered_bitmap.Add ~stream:0 ~pos:42;
  Secidx.Buffered_bitmap.update t Secidx.Buffered_bitmap.Remove ~stream:0 ~pos:42;
  Secidx.Buffered_bitmap.update t Secidx.Buffered_bitmap.Add ~stream:0 ~pos:42;
  Alcotest.(check (list int)) "net add" [ 42 ]
    (Cbitmap.Posting.to_list (Secidx.Buffered_bitmap.point_query t 0))

let suite =
  [
    qcheck prop_model_point;
    qcheck prop_model_range;
    qcheck prop_flush_preserves;
    Alcotest.test_case "leaf splits" `Quick test_leaf_splits;
    Alcotest.test_case "amortized update cost" `Quick
      test_update_amortized_cost;
    Alcotest.test_case "point query I/O scales with T" `Quick
      test_point_query_io_scales;
    Alcotest.test_case "empty streams" `Quick test_empty_streams;
    Alcotest.test_case "add/remove same position" `Quick
      test_add_remove_same_position;
  ]
