(* Tests for the universal hash families and the §3 split family. *)

let qcheck = QCheck_alcotest.to_alcotest

module Rng = Hashing.Universal.Rng
module Split = Hashing.Universal.Split

let test_rng_deterministic () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.next a) (Rng.next b)
  done

let test_rng_below_range () =
  let rng = Rng.create ~seed:7 in
  for _ = 1 to 1000 do
    let v = Rng.below rng 17 in
    if v < 0 || v >= 17 then Alcotest.fail "out of range"
  done

let test_rng_float_range () =
  let rng = Rng.create ~seed:9 in
  for _ = 1 to 1000 do
    let f = Rng.float rng in
    if f < 0.0 || f >= 1.0 then Alcotest.fail "float out of range"
  done

let test_hash_output_range () =
  let rng = Rng.create ~seed:1 in
  let h = Hashing.Universal.create rng ~out_bits:10 in
  for x = 0 to 10_000 do
    let v = Hashing.Universal.hash h x in
    if v < 0 || v >= 1024 then Alcotest.failf "hash(%d)=%d out of range" x v
  done

let test_hash_collision_rate () =
  (* Universality: for random pairs, Pr[collision] should be about
     2^-out_bits.  Check it is not wildly off (factor 4). *)
  let rng = Rng.create ~seed:3 in
  let h = Hashing.Universal.create rng ~out_bits:8 in
  let trials = 20_000 in
  let collisions = ref 0 in
  let sample = Rng.create ~seed:99 in
  for _ = 1 to trials do
    let x = Rng.below sample 1_000_000 and y = Rng.below sample 1_000_000 in
    if x <> y && Hashing.Universal.hash h x = Hashing.Universal.hash h y then
      incr collisions
  done;
  let rate = float_of_int !collisions /. float_of_int trials in
  if rate > 4.0 /. 256.0 then
    Alcotest.failf "collision rate too high: %f" rate

let test_split_output_width () =
  let rng = Rng.create ~seed:5 in
  let h = Split.create rng ~j:3 in
  Alcotest.(check int) "out bits" 8 (Split.out_bits h);
  for x = 0 to 5_000 do
    let v = Split.hash h x in
    if v < 0 || v >= 256 then Alcotest.fail "split hash out of range"
  done

let prop_split_preimage_complete =
  QCheck.Test.make ~count:100 ~name:"split preimage is exact"
    QCheck.(pair (int_range 0 4) (int_range 1 2000))
    (fun (j, n) ->
      let rng = Rng.create ~seed:(j + n) in
      let h = Split.create rng ~j in
      (* Pick a target bucket; its preimage must be exactly the set of
         i with hash i = target. *)
      let target = Split.hash h (n / 2) in
      let pre = Split.preimage h ~n target in
      let expected =
        List.filter (fun i -> Split.hash h i = target) (List.init n Fun.id)
      in
      pre = expected)

let prop_split_preimage_sorted =
  QCheck.Test.make ~count:100 ~name:"split preimage increasing"
    QCheck.(pair (int_range 0 4) (int_range 1 5000))
    (fun (j, n) ->
      let rng = Rng.create ~seed:(2 * (j + n)) in
      let h = Split.create rng ~j in
      let pre = Split.preimage h ~n 0 in
      let rec sorted = function
        | a :: (b :: _ as rest) -> a < b && sorted rest
        | _ -> true
      in
      sorted pre && List.for_all (fun i -> i >= 0 && i < n) pre)

let test_split_false_positive_rate () =
  (* For a set S of size z and bucket width 2^j with 2^(2^j) > z/eps,
     the expected FP rate of membership-via-hash is <= z/2^(2^j). *)
  let n = 4096 in
  let rng = Rng.create ~seed:11 in
  let j = 4 in
  (* universe 2^16 *)
  let h = Split.create rng ~j in
  let z = 64 in
  let sample = Rng.create ~seed:13 in
  let members = Array.init z (fun _ -> Rng.below sample n) in
  let hashed = Hashtbl.create z in
  Array.iter (fun i -> Hashtbl.replace hashed (Split.hash h i) ()) members;
  let member_set = Hashtbl.create z in
  Array.iter (fun i -> Hashtbl.replace member_set i ()) members;
  let fp = ref 0 and total = ref 0 in
  for i = 0 to n - 1 do
    if not (Hashtbl.mem member_set i) then begin
      incr total;
      if Hashtbl.mem hashed (Split.hash h i) then incr fp
    end
  done;
  let rate = float_of_int !fp /. float_of_int !total in
  let bound = float_of_int z /. 65536.0 in
  (* Allow a factor 20 of slack over the expectation; the point is the
     order of magnitude. *)
  if rate > (20.0 *. bound) +. 0.01 then
    Alcotest.failf "fp rate %f far above bound %f" rate bound

let suite =
  [
    Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng below range" `Quick test_rng_below_range;
    Alcotest.test_case "rng float range" `Quick test_rng_float_range;
    Alcotest.test_case "hash output range" `Quick test_hash_output_range;
    Alcotest.test_case "hash collision rate" `Quick test_hash_collision_rate;
    Alcotest.test_case "split output width" `Quick test_split_output_width;
    qcheck prop_split_preimage_complete;
    qcheck prop_split_preimage_sorted;
    Alcotest.test_case "split false positive rate" `Quick
      test_split_false_positive_rate;
  ]
