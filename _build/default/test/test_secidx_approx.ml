(* Tests for the approximate index of §3 (Theorem 3). *)

let qcheck = QCheck_alcotest.to_alcotest

let device ?(block_bits = 256) ?(mem_blocks = 256) () =
  Iosim.Device.create ~block_bits ~mem_bits:(mem_blocks * block_bits) ()

let gen_of_array ~sigma data = { Workload.Gen.sigma; data }

let input_gen =
  QCheck.make
    ~print:(fun (sigma, data, lo, hi) ->
      Printf.sprintf "sigma=%d n=%d lo=%d hi=%d" sigma (Array.length data) lo
        hi)
    QCheck.Gen.(
      int_range 1 24 >>= fun sigma ->
      int_range 1 300 >>= fun n ->
      array_size (return n) (int_range 0 (sigma - 1)) >>= fun data ->
      int_range 0 (sigma - 1) >>= fun a ->
      int_range 0 (sigma - 1) >>= fun b ->
      return (sigma, data, min a b, max a b))

(* The defining property: the approximate answer is always a superset
   of the exact answer — no false negatives, for any epsilon. *)
let prop_superset =
  QCheck.Test.make ~count:100 ~name:"approximate answer is a superset"
    (QCheck.pair input_gen (QCheck.int_range 1 10))
    (fun ((sigma, data, lo, hi), inv_eps) ->
      let dev = device () in
      let t = Secidx.Approx_index.build dev ~sigma data in
      let epsilon = 1.0 /. float_of_int inv_eps in
      let answer = Secidx.Approx_index.query t ~epsilon ~lo ~hi in
      let naive =
        Workload.Queries.naive_answer (gen_of_array ~sigma data)
          { Workload.Queries.lo; hi }
      in
      let n = Array.length data in
      let cands = Secidx.Approx_index.candidates answer ~n in
      Cbitmap.Posting.subset naive cands
      && Cbitmap.Posting.fold
           (fun acc i -> acc && Secidx.Approx_index.mem answer i)
           true naive)

(* mem and candidates agree. *)
let prop_mem_matches_candidates =
  QCheck.Test.make ~count:75 ~name:"mem agrees with candidates"
    (QCheck.pair input_gen (QCheck.int_range 2 6))
    (fun ((sigma, data, lo, hi), inv_eps) ->
      let dev = device () in
      let t = Secidx.Approx_index.build dev ~sigma data in
      let epsilon = 1.0 /. float_of_int inv_eps in
      let answer = Secidx.Approx_index.query t ~epsilon ~lo ~hi in
      let n = Array.length data in
      let cands = Secidx.Approx_index.candidates answer ~n in
      let ok = ref true in
      for i = 0 to n - 1 do
        if Secidx.Approx_index.mem answer i <> Cbitmap.Posting.mem cands i
        then ok := false
      done;
      !ok)

let test_false_positive_rate () =
  (* Statistical check: measured FP rate should be at most a small
     multiple of epsilon (expectation is <= epsilon per element). *)
  (* n = 2^16 gives k = 4 and a largest hashed universe of 2^16, so
     moderate z/epsilon stays on the hashed path. *)
  let n = 65536 and sigma = 256 in
  let g = Workload.Gen.uniform ~seed:11 ~n ~sigma in
  let dev = device ~block_bits:1024 () in
  let t = Secidx.Approx_index.build ~seed:7 dev ~sigma g.Workload.Gen.data in
  let epsilon = 1.0 /. 16.0 in
  let check lo hi =
    match Secidx.Approx_index.query t ~epsilon ~lo ~hi with
    | Secidx.Approx_index.Exact _ -> ()
    | Secidx.Approx_index.Hashed _ as answer ->
        let naive =
          Workload.Queries.naive_answer g { Workload.Queries.lo; hi }
        in
        let cands = Secidx.Approx_index.candidates answer ~n in
        let fp =
          Cbitmap.Posting.cardinal cands - Cbitmap.Posting.cardinal naive
        in
        let outside = n - Cbitmap.Posting.cardinal naive in
        let rate = float_of_int fp /. float_of_int (max 1 outside) in
        if rate > 6.0 *. epsilon then
          Alcotest.failf "fp rate %.4f >> epsilon %.4f (lo=%d hi=%d)" rate
            epsilon lo hi
  in
  check 0 0;
  check 3 5;
  check 17 20;
  check 100 101

let test_bits_read_scale_with_epsilon () =
  (* Savings appear when z·(1/ε) fits a hashed universe much smaller
     than n: each element then costs O(lg(1/ε)) bits instead of
     O(lg(n/z)).  Query two rare characters (z ≈ 32 over n = 2^16):
     ε = 1/4 gives j = 3 (8-bit universe) — far fewer bits than the
     exact gaps of ~2·lg(n/z) bits each. *)
  let n = 65536 and sigma = 4096 in
  let g = Workload.Gen.uniform ~seed:12 ~n ~sigma in
  let dev = device ~block_bits:1024 ~mem_blocks:1024 () in
  let t = Secidx.Approx_index.build ~seed:3 dev ~sigma g.Workload.Gen.data in
  let bits_for_eps epsilon expected_j =
    Iosim.Device.clear_pool dev;
    Iosim.Device.reset_stats dev;
    (match Secidx.Approx_index.query t ~epsilon ~lo:40 ~hi:41 with
    | Secidx.Approx_index.Hashed { j; _ } ->
        Alcotest.(check int) "chosen j" expected_j j
    | Secidx.Approx_index.Exact _ -> Alcotest.fail "expected hashed answer");
    (Iosim.Device.stats dev).Iosim.Stats.bits_read
  in
  let exact_bits =
    Iosim.Device.clear_pool dev;
    Iosim.Device.reset_stats dev;
    ignore (Secidx.Static_index.query (Secidx.Approx_index.base t) ~lo:40 ~hi:41);
    (Iosim.Device.stats dev).Iosim.Stats.bits_read
  in
  let b_coarse = bits_for_eps 0.25 3 in
  if not (b_coarse < exact_bits) then
    Alcotest.failf "coarse (%d bits) not below exact (%d bits)" b_coarse
      exact_bits

let test_exact_fallback () =
  (* Tiny epsilon forces j > k, i.e. an exact answer. *)
  let n = 1024 and sigma = 16 in
  let g = Workload.Gen.uniform ~seed:13 ~n ~sigma in
  let dev = device () in
  let t = Secidx.Approx_index.build dev ~sigma g.Workload.Gen.data in
  match Secidx.Approx_index.query t ~epsilon:1e-12 ~lo:2 ~hi:9 with
  | Secidx.Approx_index.Exact a ->
      let naive =
        Workload.Queries.naive_answer g { Workload.Queries.lo = 2; hi = 9 }
      in
      Alcotest.(check bool) "exact correct" true
        (Cbitmap.Posting.equal (Indexing.Answer.to_posting ~n a) naive)
  | Secidx.Approx_index.Hashed _ -> Alcotest.fail "expected exact fallback"

let test_k_value () =
  let n = 65536 and sigma = 8 in
  let g = Workload.Gen.uniform ~seed:14 ~n ~sigma in
  let dev = device () in
  let t = Secidx.Approx_index.build dev ~sigma g.Workload.Gen.data in
  (* floor(lg lg 65536) = floor(lg 16) = 4 *)
  Alcotest.(check int) "k" 4 (Secidx.Approx_index.k t)

let test_intersection_of_approx () =
  (* §3: intersect several approximate results by intersecting hashed
     sets via membership — emulate the d-dimensional use. *)
  let n = 4096 and sigma = 64 in
  let g1 = Workload.Gen.uniform ~seed:15 ~n ~sigma in
  let g2 = Workload.Gen.uniform ~seed:16 ~n ~sigma in
  let t1 = Secidx.Approx_index.build (device ()) ~sigma g1.Workload.Gen.data in
  let t2 = Secidx.Approx_index.build ~seed:99 (device ()) ~sigma g2.Workload.Gen.data in
  let a1 = Secidx.Approx_index.query t1 ~epsilon:0.1 ~lo:0 ~hi:7 in
  let a2 = Secidx.Approx_index.query t2 ~epsilon:0.1 ~lo:8 ~hi:15 in
  let naive1 = Workload.Queries.naive_answer g1 { Workload.Queries.lo = 0; hi = 7 } in
  let naive2 = Workload.Queries.naive_answer g2 { Workload.Queries.lo = 8; hi = 15 } in
  let exact_inter = Cbitmap.Posting.inter naive1 naive2 in
  let approx_inter =
    Cbitmap.Posting.fold
      (fun acc i ->
        if Secidx.Approx_index.mem a2 i then i :: acc else acc)
      []
      (Secidx.Approx_index.candidates a1 ~n)
  in
  let approx_inter = Cbitmap.Posting.of_list approx_inter in
  Alcotest.(check bool) "intersection superset" true
    (Cbitmap.Posting.subset exact_inter approx_inter);
  (* FP of the intersection is quadratically small; allow slack. *)
  let extra =
    Cbitmap.Posting.cardinal approx_inter - Cbitmap.Posting.cardinal exact_inter
  in
  if extra > n / 20 then Alcotest.failf "too many intersection FPs: %d" extra

let test_hashed_space_overhead () =
  (* The hashed sets must cost at most a constant factor of the base:
     sum_j lg(2^2^j choose |I|) = O(lg (n choose |I|)). *)
  let n = 32768 and sigma = 128 in
  let g = Workload.Gen.zipf ~seed:17 ~n ~sigma ~theta:1.0 () in
  let dev = device ~block_bits:1024 () in
  let t = Secidx.Approx_index.build dev ~sigma g.Workload.Gen.data in
  let base = Secidx.Static_index.size_bits (Secidx.Approx_index.base t) in
  let hashed = Secidx.Approx_index.hashed_bits t in
  if hashed > 3 * base then
    Alcotest.failf "hashed sets too large: %d vs base %d" hashed base

let suite =
  [
    qcheck prop_superset;
    qcheck prop_mem_matches_candidates;
    Alcotest.test_case "false positive rate" `Quick test_false_positive_rate;
    Alcotest.test_case "bits read scale with epsilon" `Quick
      test_bits_read_scale_with_epsilon;
    Alcotest.test_case "exact fallback for tiny epsilon" `Quick
      test_exact_fallback;
    Alcotest.test_case "k = floor(lg lg n)" `Quick test_k_value;
    Alcotest.test_case "intersection of approximate answers" `Quick
      test_intersection_of_approx;
    Alcotest.test_case "hashed space overhead bounded" `Quick
      test_hashed_space_overhead;
  ]
