test/test_secidx_dynamic.ml: Alcotest Array Cbitmap Gen Hashing Indexing Iosim List Printf QCheck QCheck_alcotest Secidx String Workload
