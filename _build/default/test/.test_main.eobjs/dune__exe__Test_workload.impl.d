test/test_workload.ml: Alcotest Array Cbitmap List QCheck QCheck_alcotest Workload
