test/test_hashing.ml: Alcotest Array Fun Hashing Hashtbl List QCheck QCheck_alcotest
