test/test_secidx_approx.ml: Alcotest Array Cbitmap Indexing Iosim Printf QCheck QCheck_alcotest Secidx Workload
