test/test_ridint.ml: Alcotest Array Cbitmap Hashing Iosim List Printf QCheck QCheck_alcotest Ridint
