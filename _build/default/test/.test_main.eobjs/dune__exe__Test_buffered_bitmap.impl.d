test/test_buffered_bitmap.ml: Alcotest Array Cbitmap Hashing Int Iosim List Printf QCheck QCheck_alcotest Secidx Set String
