test/test_bitio.ml: Alcotest Bitio Bytes Char Format Gen List QCheck QCheck_alcotest
