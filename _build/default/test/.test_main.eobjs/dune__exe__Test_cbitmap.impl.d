test/test_cbitmap.ml: Alcotest Array Bitio Cbitmap Int List QCheck QCheck_alcotest Set
