test/test_iosim.ml: Alcotest Bitio Iosim List QCheck QCheck_alcotest
