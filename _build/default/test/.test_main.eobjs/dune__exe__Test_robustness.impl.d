test/test_robustness.ml: Alcotest Array Baselines Cbitmap Gen Indexing Iosim List Printf QCheck QCheck_alcotest Secidx Workload
