test/test_succinct.ml: Alcotest Array Bitio Cbitmap Format Fun Gen Hashing Indexing Int Iosim List QCheck QCheck_alcotest Secidx Set
