test/test_baselines.ml: Alcotest Array Baselines Cbitmap Gen Indexing Iosim List Printf QCheck QCheck_alcotest String Workload
