test/test_secidx_static.ml: Alcotest Array Bitio Cbitmap Gen Hashtbl Indexing Iosim List Option Printf QCheck QCheck_alcotest Secidx String Workload
